//! Exact non-migratory optimum by assignment enumeration.
//!
//! Machines are identical, so assignments are enumerated up to machine
//! relabeling as *restricted growth strings*: job 0 goes to machine 0, and
//! job `k` may use machines `0..=min(used, m-1)` where `used` is the number
//! of machines already populated. The search is branch-and-bound: per-machine
//! YDS energy is monotone in the job set, so a partial sum that already
//! exceeds the incumbent is pruned.
//!
//! Complexity is Bell-number-ish (`<= m^n`); intended for ground truth on
//! `n ≲ 12` (EXP-1/2/5), not production use.

use crate::assignment::{assignment_energy, Assignment};
use crate::eval::YdsEval;
use ssp_model::Instance;

/// Result of the exact search.
#[derive(Debug, Clone)]
pub struct ExactSolution {
    /// The optimal assignment.
    pub assignment: Assignment,
    /// Its energy (the non-migratory optimum).
    pub energy: f64,
    /// Number of assignment tree nodes explored (complexity probe).
    pub nodes: usize,
}

/// Exhaustive branch-and-bound over job→machine assignments. Panics if
/// `n > 16` (the search would not finish; use the approximation algorithms).
///
/// ```
/// use ssp_model::{Instance, Job};
/// use ssp_core::exact::exact_nonmigratory;
///
/// // Two identical unit jobs, two machines: optimal splits them.
/// let inst = Instance::new(
///     vec![Job::new(0, 1.0, 0.0, 1.0), Job::new(1, 1.0, 0.0, 1.0)],
///     2,
///     2.0,
/// ).unwrap();
/// let sol = exact_nonmigratory(&inst);
/// assert!((sol.energy - 2.0).abs() < 1e-9);
/// assert_ne!(sol.assignment.machine_of(0), sol.assignment.machine_of(1));
/// ```
pub fn exact_nonmigratory(instance: &Instance) -> ExactSolution {
    let n = instance.len();
    assert!(
        n <= 16,
        "exact solver is for ground truth on small n (got {n})"
    );
    let m = instance.machines();
    if n == 0 {
        return ExactSolution {
            assignment: Assignment::new(vec![]),
            energy: 0.0,
            nodes: 0,
        };
    }

    // Assign in release order: earlier jobs first keeps partial energies
    // meaningful and pruning effective.
    let order = instance.release_order();
    let mut state = Search {
        order: &order,
        m,
        current: vec![0usize; n], // machine per *rank* in `order`
        eval: YdsEval::new(instance),
        best_energy: f64::INFINITY,
        best: vec![0usize; n],
        nodes: 0,
    };
    state.recurse(0, 0, 0.0);

    // Translate rank-indexed best assignment to instance indexing.
    let mut machine_of = vec![0usize; n];
    for (rank, &i) in order.iter().enumerate() {
        machine_of[i] = state.best[rank];
    }
    let assignment = Assignment::new(machine_of);
    let energy = assignment_energy(instance, &assignment);
    ExactSolution {
        assignment,
        energy,
        nodes: state.nodes,
    }
}

struct Search<'a> {
    order: &'a [usize],
    m: usize,
    current: Vec<usize>,
    /// Incremental per-machine energy oracle: prices each child placement
    /// with a memoized YDS call, and sibling subtrees that rebuild the same
    /// machine contents become cache hits instead of fresh peels.
    eval: YdsEval<'a>,
    best_energy: f64,
    best: Vec<usize>,
    nodes: usize,
}

impl Search<'_> {
    fn recurse(&mut self, rank: usize, used: usize, total: f64) {
        self.nodes += 1;
        if rank == self.order.len() {
            if total < self.best_energy {
                self.best_energy = total;
                self.best.copy_from_slice(&self.current);
            }
            return;
        }
        let job_idx = self.order[rank];
        // Restricted growth: only the first unused machine is tried among
        // the empty ones (identical machines => symmetric).
        let limit = (used + 1).min(self.m);
        for machine in 0..limit {
            let old_energy = self.eval.machine_energy(machine);
            let new_energy = self.eval.energy_with(machine, job_idx);
            let new_total = total - old_energy + new_energy;
            if new_total < self.best_energy {
                self.current[rank] = machine;
                self.eval.add(job_idx, machine);
                let new_used = used.max(machine + 1);
                self.recurse(rank + 1, new_used, new_total);
                self.eval.remove(job_idx);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rr::rr_assignment;
    use ssp_model::{Instance, Job};
    use ssp_workloads::families;

    #[test]
    fn empty_and_singleton() {
        let empty = Instance::new(vec![], 3, 2.0).unwrap();
        assert_eq!(exact_nonmigratory(&empty).energy, 0.0);

        let one = Instance::new(vec![Job::new(0, 2.0, 0.0, 2.0)], 3, 2.0).unwrap();
        let sol = exact_nonmigratory(&one);
        assert!((sol.energy - 2.0).abs() < 1e-9); // speed 1, E = 2·1
    }

    #[test]
    fn two_identical_jobs_split_across_machines() {
        let inst = Instance::new(
            vec![Job::new(0, 1.0, 0.0, 1.0), Job::new(1, 1.0, 0.0, 1.0)],
            2,
            2.0,
        )
        .unwrap();
        let sol = exact_nonmigratory(&inst);
        assert!((sol.energy - 2.0).abs() < 1e-9);
        assert_ne!(sol.assignment.machine_of(0), sol.assignment.machine_of(1));
    }

    #[test]
    fn symmetry_pruning_explores_fewer_nodes_than_m_pow_n() {
        let inst = families::general(8, 4, 2.0).gen(3);
        let sol = exact_nonmigratory(&inst);
        // Full enumeration would be 4^8 = 65536 leaves; restricted growth +
        // pruning must do much better.
        assert!(sol.nodes < 30_000, "nodes = {}", sol.nodes);
        assert!(sol.energy.is_finite());
    }

    #[test]
    fn never_beaten_by_heuristics() {
        for seed in [1u64, 5, 9] {
            let inst = families::general(7, 2, 2.3).gen(seed);
            let opt = exact_nonmigratory(&inst).energy;
            let rr = crate::assignment::assignment_energy(&inst, &rr_assignment(&inst));
            assert!(
                opt <= rr * (1.0 + 1e-9),
                "seed {seed}: exact {opt} beaten by RR {rr}"
            );
        }
    }

    #[test]
    fn lower_bounded_by_migratory_optimum() {
        for seed in [2u64, 4] {
            let inst = families::general(6, 2, 2.0).gen(seed);
            let opt = exact_nonmigratory(&inst).energy;
            let lb = ssp_migratory::bal::bal(&inst).energy;
            assert!(
                opt >= lb * (1.0 - 1e-6),
                "seed {seed}: non-migratory OPT {opt} below migratory LB {lb}"
            );
        }
    }

    #[test]
    fn matches_brute_force_on_tiny_instance() {
        // n = 4, m = 2: compare against literal 2^4 enumeration.
        let inst = families::general(4, 2, 2.0).gen(11);
        let sol = exact_nonmigratory(&inst);
        let mut best = f64::INFINITY;
        for mask in 0..(1u32 << 4) {
            let assign = Assignment::new((0..4).map(|i| ((mask >> i) & 1) as usize).collect());
            best = best.min(assignment_energy(&inst, &assign));
        }
        assert!(
            (sol.energy - best).abs() < 1e-9,
            "{} vs {}",
            sol.energy,
            best
        );
    }

    #[test]
    #[should_panic(expected = "exact solver is for ground truth")]
    fn refuses_large_instances() {
        let inst = families::general(17, 2, 2.0).gen(0);
        exact_nonmigratory(&inst);
    }
}
