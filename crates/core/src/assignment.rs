//! Job→machine assignments and the shared "assign, then YDS per machine"
//! pipeline.
//!
//! For a fixed assignment the non-migratory problem decomposes into `m`
//! independent single-processor problems, each solved optimally by YDS.
//! Hence (a) evaluating an assignment = summing per-machine YDS energies, and
//! (b) the global non-migratory optimum = the best assignment — which is
//! exactly what makes the problem combinatorial (and NP-hard in general).

use ssp_model::{Instance, Schedule};
use ssp_single::yds::{yds, yds_schedule};

/// A job→machine map, indexed like `Instance::jobs()`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Assignment {
    machine_of: Vec<usize>,
}

impl Assignment {
    /// Wrap a machine index per job. Indices are validated against the
    /// instance at evaluation time.
    pub fn new(machine_of: Vec<usize>) -> Self {
        Assignment { machine_of }
    }

    /// Machine of job `i`.
    #[inline]
    pub fn machine_of(&self, i: usize) -> usize {
        self.machine_of[i]
    }

    /// The raw map.
    #[inline]
    pub fn as_slice(&self) -> &[usize] {
        &self.machine_of
    }

    /// Number of jobs covered.
    #[inline]
    pub fn len(&self) -> usize {
        self.machine_of.len()
    }

    /// True when no jobs.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.machine_of.is_empty()
    }

    /// Job indices grouped per machine (length = `machines`).
    pub fn groups(&self, machines: usize) -> Vec<Vec<usize>> {
        let mut groups = vec![Vec::new(); machines];
        for (i, &p) in self.machine_of.iter().enumerate() {
            assert!(
                p < machines,
                "job {i} assigned to machine {p} of {machines}"
            );
            groups[p].push(i);
        }
        groups
    }
}

/// Optimal energy of an assignment: sum of per-machine YDS energies.
///
/// One scratch job buffer is reused across machines (no per-group
/// allocation); the kernel behind [`yds`] is the fast pruned peel, so this
/// is also the cheapest way to price a one-off assignment. Searches that
/// price many *related* assignments should use [`crate::eval::YdsEval`]
/// instead, which additionally memoizes per-machine energies.
pub fn assignment_energy(instance: &Instance, assignment: &Assignment) -> f64 {
    assert_eq!(
        assignment.len(),
        instance.len(),
        "assignment length mismatch"
    );
    let mut scratch = Vec::new();
    assignment
        .groups(instance.machines())
        .into_iter()
        .map(|group| {
            scratch.clear();
            scratch.extend(group.iter().map(|&i| *instance.job(i)));
            yds(&scratch, instance.alpha()).energy
        })
        .sum()
}

/// Materialize the optimal schedule for an assignment: YDS + EDF on each
/// machine, merged. Always succeeds (speeds are unbounded).
pub fn assignment_schedule(instance: &Instance, assignment: &Assignment) -> Schedule {
    let _span = ssp_probe::span("assign.schedule");
    assert_eq!(
        assignment.len(),
        instance.len(),
        "assignment length mismatch"
    );
    let mut merged = Schedule::new(instance.machines());
    for (machine, group) in assignment
        .groups(instance.machines())
        .into_iter()
        .enumerate()
    {
        if group.is_empty() {
            continue;
        }
        let jobs: Vec<_> = group.iter().map(|&i| *instance.job(i)).collect();
        let (_, schedule) = yds_schedule(&jobs, instance.alpha(), machine);
        for &seg in schedule.segments() {
            merged.push(seg);
        }
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssp_model::schedule::ValidationOptions;
    use ssp_model::{Instance, Job};

    fn inst() -> Instance {
        Instance::new(
            vec![
                Job::new(0, 1.0, 0.0, 1.0),
                Job::new(1, 1.0, 0.0, 1.0),
                Job::new(2, 2.0, 1.0, 3.0),
            ],
            2,
            2.0,
        )
        .unwrap()
    }

    #[test]
    fn energy_sums_per_machine_yds() {
        let instance = inst();
        // Jobs 0,1 together on machine 0 (speed 2 each in [0,1]), job 2 alone.
        let a = Assignment::new(vec![0, 0, 1]);
        // machine 0: two unit jobs in [0,1] => speed 2, E = 2 * 1 * 2 = 4.
        // machine 1: w=2 over [1,3] => speed 1, E = 2.
        assert!((assignment_energy(&instance, &a) - 6.0).abs() < 1e-9);

        // Splitting jobs 0,1 across machines is cheaper: 1 + 1 + 2 = 4.
        let b = Assignment::new(vec![0, 1, 0]);
        assert!((assignment_energy(&instance, &b) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn schedule_matches_energy_and_is_non_migratory() {
        let instance = inst();
        let a = Assignment::new(vec![0, 1, 0]);
        let s = assignment_schedule(&instance, &a);
        let stats = s
            .validate(&instance, ValidationOptions::non_migratory())
            .unwrap();
        assert!((stats.energy - assignment_energy(&instance, &a)).abs() < 1e-9);
        // Each job sits on its assigned machine.
        for seg in s.segments() {
            let i = instance.index_of(seg.job).unwrap();
            assert_eq!(seg.machine, a.machine_of(i));
        }
    }

    #[test]
    fn groups_partition_jobs() {
        let a = Assignment::new(vec![1, 0, 1, 1]);
        let g = a.groups(2);
        assert_eq!(g[0], vec![1]);
        assert_eq!(g[1], vec![0, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "assigned to machine")]
    fn rejects_out_of_range_machine() {
        let a = Assignment::new(vec![5, 0, 0]);
        assignment_energy(&inst(), &a);
    }

    #[test]
    fn empty_machines_are_free() {
        let instance = Instance::new(vec![Job::new(0, 1.0, 0.0, 2.0)], 4, 2.0).unwrap();
        let a = Assignment::new(vec![2]);
        assert!((assignment_energy(&instance, &a) - 0.5).abs() < 1e-9);
        let s = assignment_schedule(&instance, &a);
        assert!(s.segments().iter().all(|g| g.machine == 2));
    }
}
