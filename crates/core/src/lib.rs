//! # ssp-core
//!
//! The target paper's contribution: **non-migratory** multiprocessor speed
//! scaling. Jobs have works, release dates and deadlines; each job must run
//! entirely on one of `m` identical speed-scalable processors (preemption on
//! that processor is allowed); minimize total energy under power `s^α`.
//!
//! Because for a *fixed* job→machine assignment the machines decouple and the
//! single-processor optimum (YDS) is known, every algorithm here is an
//! assignment policy followed by per-machine YDS:
//!
//! | module | algorithm | regime | guarantee |
//! |--------|-----------|--------|-----------|
//! | [`rr`] | sorted round-robin | unit works + agreeable deadlines | **optimal** (paper R1) |
//! | [`relax`] | migratory relaxation + list rounding | unit works, arbitrary windows | `2(2-1/m)^α`-approx regime (paper R2; NP-hard) |
//! | [`classified`] | power-of-two work classes, RR per class | arbitrary works + agreeable deadlines | `α^α 2^{4α}`-approx regime (paper R3) |
//! | [`list`] | least-loaded / EDF list baselines | any | heuristics for comparison |
//! | [`exact`] | assignment enumeration (restricted growth) + pruning | any, `n ≲ 12` | optimal (exponential) |
//! | [`hardness`] | adversarial gadget families | unit works, arbitrary windows | stress instances for the NP-hard regime |
//! | [`online`] | AVR/OA lifted to `m` machines | online | baselines (migratory online) |
//!
//! The approximation-factor *measurements* (against the certified migratory
//! lower bound from `ssp-migratory`) are produced by the `ssp-exper` harness;
//! see `EXPERIMENTS.md`.

#![warn(missing_docs)]

pub mod assignment;
pub mod budget;
pub mod classified;
pub mod decompose;
pub mod eval;
pub mod exact;
pub mod hardness;
pub mod list;
pub mod local_search;
pub mod online;
pub mod parallel;
pub mod relax;
pub mod rr;
pub mod throughput;

pub use assignment::{assignment_energy, assignment_schedule, Assignment};
pub use budget::{makespan_under_budget, InnerSolver};
pub use classified::classified_rr;
pub use decompose::{decompose, exact_decomposed};
pub use eval::{Candidate, LiveEval, YdsEval};
pub use exact::exact_nonmigratory;
pub use list::{least_loaded, marginal_energy_greedy};
pub use local_search::{improve, LocalSearchOptions};
pub use online::dispatch_oa_nonmigratory;
pub use parallel::exact_nonmigratory_parallel;
pub use relax::relax_round;
pub use rr::{rr_assignment, rr_yds};
pub use throughput::{max_throughput_exact, max_throughput_greedy};
