//! Old vs new single-processor YDS kernel across the instance families
//! that stress it differently: `weighted_agreeable` (few peels, long
//! critical intervals), `laminar_nested` (deep containment — the
//! worst case for the quadratic reference), and `crossing` (staircase
//! overlap, many same-density near-ties).
//!
//! Two outputs:
//!
//! * the usual harness timing lines (`cargo bench -p ssp-bench --bench
//!   yds_kernel`), one benchmark per (family, n, kernel);
//! * a machine-readable artifact: set `SSP_BENCH_JSON=<path>` in
//!   measurement mode and a self-timed sweep (median of several reps,
//!   plus `yds.peels` / `yds.candidates` deltas per kernel) is written
//!   as JSON to `<path>`. The committed `BENCH_yds.json` at the repo
//!   root is produced this way.

use ssp_bench::fixture;
use ssp_bench::harness::{BenchmarkId, Criterion};
use ssp_model::Job;
use ssp_single::yds::{yds, yds_reference};
use ssp_workloads::families;
use std::hint::black_box;
use std::time::Instant;

const SIZES: [usize; 4] = [50, 200, 800, 1600];
const FAMILIES: [&str; 3] = ["agreeable", "laminar_nested", "crossing"];

/// Single-machine job list for one (family, n) cell. Families that only
/// exist as direct `Instance` constructors are called as such; the
/// agreeable family goes through the shared deterministic fixture.
fn family_jobs(family: &str, n: usize) -> Vec<Job> {
    match family {
        "agreeable" => fixture("weighted_agreeable", n, 1, 2.0).jobs().to_vec(),
        "laminar_nested" => families::laminar_nested(n, 1, 2.0, 0x9D5 + n as u64)
            .jobs()
            .to_vec(),
        "crossing" => families::crossing(n, 1, 2.0, 0xC0 + n as u64)
            .jobs()
            .to_vec(),
        _ => unreachable!("unknown family {family}"),
    }
}

fn kernels(c: &mut Criterion) {
    for family in FAMILIES {
        let mut g = c.benchmark_group(format!("yds_kernel_{family}"));
        for n in SIZES {
            let jobs = family_jobs(family, n);
            g.bench_with_input(BenchmarkId::new("fast", n), &jobs, |b, jobs| {
                b.iter(|| black_box(yds(jobs, 2.0).energy))
            });
            g.bench_with_input(BenchmarkId::new("reference", n), &jobs, |b, jobs| {
                b.iter(|| black_box(yds_reference(jobs, 2.0).energy))
            });
        }
        g.finish();
    }
}

/// One self-timed cell of the JSON artifact.
fn timed_cell(
    jobs: &[Job],
    kernel: fn(&[Job], f64) -> ssp_single::yds::YdsSolution,
) -> (f64, u64, u64) {
    // Median of an odd number of reps; large instances get fewer reps so
    // the quadratic reference keeps the sweep under a minute.
    let reps = (400_000 / (jobs.len() * jobs.len())).clamp(3, 51) | 1;
    let p0 = ssp_probe::counter_value("yds.peels");
    let c0 = ssp_probe::counter_value("yds.candidates");
    let mut times: Vec<f64> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            black_box(kernel(jobs, 2.0).energy);
            t.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    times.sort_by(f64::total_cmp);
    let peels = (ssp_probe::counter_value("yds.peels") - p0) / reps as u64;
    let cand = (ssp_probe::counter_value("yds.candidates") - c0) / reps as u64;
    (times[reps / 2], peels, cand)
}

fn write_json(path: &str) {
    let session = ssp_probe::Session::begin();
    let mut cells = Vec::new();
    for family in FAMILIES {
        for n in SIZES {
            let jobs = family_jobs(family, n);
            let (fast_ms, fast_peels, fast_cand) = timed_cell(&jobs, yds);
            let (ref_ms, ref_peels, ref_cand) = timed_cell(&jobs, yds_reference);
            let fast_e = yds(&jobs, 2.0).energy;
            let ref_e = yds_reference(&jobs, 2.0).energy;
            assert_eq!(
                fast_e.to_bits(),
                ref_e.to_bits(),
                "kernel energy mismatch on {family} n={n}"
            );
            cells.push(format!(
                concat!(
                    "    {{\"family\": \"{}\", \"n\": {}, ",
                    "\"fast_ms\": {:.4}, \"ref_ms\": {:.4}, \"speedup\": {:.2}, ",
                    "\"peels\": {}, \"fast_candidates\": {}, \"ref_candidates\": {}, ",
                    "\"energy\": {:.6}}}"
                ),
                family,
                n,
                fast_ms,
                ref_ms,
                ref_ms / fast_ms,
                ref_peels.max(fast_peels),
                fast_cand,
                ref_cand,
                fast_e
            ));
        }
    }
    let body = format!(
        "{{\n  \"bench\": \"yds_kernel\",\n  \"alpha\": 2.0,\n  \"unit\": \"ms_median\",\n  \"cells\": [\n{}\n  ]\n}}\n",
        cells.join(",\n")
    );
    std::fs::write(path, body).unwrap_or_else(|e| panic!("write {path}: {e}"));
    eprintln!("wrote {path}");
    if let Some(s) = session {
        let _ = s.end();
    }
}

fn main() {
    let mut c = Criterion::from_args();
    kernels(&mut c);
    c.final_summary();
    let measure = std::env::args().any(|a| a == "--bench");
    if let Ok(path) = std::env::var("SSP_BENCH_JSON") {
        if measure && !path.is_empty() {
            write_json(&path);
        }
    }
}
