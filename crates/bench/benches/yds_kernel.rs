//! Old vs new single-processor YDS kernel across the instance families
//! that stress it differently: `weighted_agreeable` (few peels, long
//! critical intervals), `laminar_nested` (deep containment — the
//! worst case for the quadratic reference), and `crossing` (staircase
//! overlap, many same-density near-ties).
//!
//! Two outputs:
//!
//! * the usual harness timing lines (`cargo bench -p ssp-bench --bench
//!   yds_kernel`), one benchmark per (family, n, kernel);
//! * a machine-readable artifact: set `SSP_BENCH_JSON=<path>` in
//!   measurement mode and a self-timed sweep (median of several reps,
//!   plus `yds.peels` / `yds.candidates` deltas per kernel) is written
//!   as JSON to `<path>`. The committed `BENCH_yds.json` at the repo
//!   root is produced this way. Additionally setting
//!   `SSP_BENCH_HISTORY=<path>` appends the same cells as one
//!   `bench_run` line (tagged with the git revision) to the trajectory
//!   file — the input of the `speedscale bench-diff` regression gate.

use ssp_bench::artifact::{Artifact, CellBuilder, CellMeta};
use ssp_bench::harness::{BenchmarkId, Criterion};
use ssp_bench::{fixture, trajectory};
use ssp_model::Job;
use ssp_single::yds::{yds, yds_reference};
use ssp_workloads::families;
use std::hint::black_box;
use std::time::Instant;

const SIZES: [usize; 4] = [50, 200, 800, 1600];
const FAMILIES: [&str; 3] = ["agreeable", "laminar_nested", "crossing"];

/// Single-machine job list for one (family, n) cell. Families that only
/// exist as direct `Instance` constructors are called as such; the
/// agreeable family goes through the shared deterministic fixture.
fn family_jobs(family: &str, n: usize) -> Vec<Job> {
    match family {
        "agreeable" => fixture("weighted_agreeable", n, 1, 2.0).jobs().to_vec(),
        "laminar_nested" => families::laminar_nested(n, 1, 2.0, 0x9D5 + n as u64)
            .jobs()
            .to_vec(),
        "crossing" => families::crossing(n, 1, 2.0, 0xC0 + n as u64)
            .jobs()
            .to_vec(),
        _ => unreachable!("unknown family {family}"),
    }
}

fn kernels(c: &mut Criterion) {
    for family in FAMILIES {
        let mut g = c.benchmark_group(format!("yds_kernel_{family}"));
        for n in SIZES {
            let jobs = family_jobs(family, n);
            g.bench_with_input(BenchmarkId::new("fast", n), &jobs, |b, jobs| {
                b.iter(|| black_box(yds(jobs, 2.0).energy))
            });
            g.bench_with_input(BenchmarkId::new("reference", n), &jobs, |b, jobs| {
                b.iter(|| black_box(yds_reference(jobs, 2.0).energy))
            });
        }
        g.finish();
    }
}

/// One self-timed cell of the JSON artifact.
fn timed_cell(
    jobs: &[Job],
    kernel: fn(&[Job], f64) -> ssp_single::yds::YdsSolution,
) -> (f64, u64, u64) {
    // Median of an odd number of reps; large instances get fewer reps so
    // the quadratic reference keeps the sweep under a minute.
    let reps = (400_000 / (jobs.len() * jobs.len())).clamp(3, 51) | 1;
    let p0 = ssp_probe::counter_value("yds.peels");
    let c0 = ssp_probe::counter_value("yds.candidates");
    let mut times: Vec<f64> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            black_box(kernel(jobs, 2.0).energy);
            t.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    times.sort_by(f64::total_cmp);
    let peels = (ssp_probe::counter_value("yds.peels") - p0) / reps as u64;
    let cand = (ssp_probe::counter_value("yds.candidates") - c0) / reps as u64;
    (times[reps / 2], peels, cand)
}

/// Run the self-timed sweep and collect the cells of the JSON artifact,
/// plus their diff identities for the in-run regression check.
fn sweep_artifact() -> (Artifact, Vec<CellMeta>) {
    let session = ssp_probe::Session::begin();
    let mut cells = Vec::new();
    let mut metas = Vec::new();
    for family in FAMILIES {
        for n in SIZES {
            let jobs = family_jobs(family, n);
            let (fast_ms, fast_peels, fast_cand) = timed_cell(&jobs, yds);
            let (ref_ms, ref_peels, ref_cand) = timed_cell(&jobs, yds_reference);
            let fast_e = yds(&jobs, 2.0).energy;
            let ref_e = yds_reference(&jobs, 2.0).energy;
            assert_eq!(
                fast_e.to_bits(),
                ref_e.to_bits(),
                "kernel energy mismatch on {family} n={n}"
            );
            let cell = CellBuilder::new(family, n)
                .metric_ms("fast_ms", fast_ms)
                .metric_ms("ref_ms", ref_ms)
                .num("speedup", ref_ms / fast_ms, 2)
                .int("peels", ref_peels.max(fast_peels))
                .int("fast_candidates", fast_cand)
                .int("ref_candidates", ref_cand)
                .num("energy", fast_e, 6);
            metas.push(cell.meta());
            cells.push(cell.render());
        }
    }
    if let Some(s) = session {
        let _ = s.end();
    }
    (
        Artifact {
            bench: "yds_kernel".to_string(),
            alpha: 2.0,
            unit: "ms_median".to_string(),
            cells,
        },
        metas,
    )
}

fn main() {
    let mut c = Criterion::from_args();
    kernels(&mut c);
    c.final_summary();
    let measure = std::env::args().any(|a| a == "--bench");
    let json = std::env::var("SSP_BENCH_JSON").unwrap_or_default();
    let history = std::env::var("SSP_BENCH_HISTORY").unwrap_or_default();
    if measure && (!json.is_empty() || !history.is_empty()) {
        let (artifact, metas) = sweep_artifact();
        if !history.is_empty() {
            // Compare against the trajectory before appending this run; a
            // regressed cell gets one untimed probe re-run (both kernels,
            // so the trace splits "more peels" from "slower peels") stored
            // under SSP_BENCH_TRACE_DIR.
            trajectory::check_and_attach("yds_kernel", &metas, &history, |family, n| {
                let jobs = family_jobs(family, n);
                black_box(yds(&jobs, 2.0).energy);
                black_box(yds_reference(&jobs, 2.0).energy);
            });
        }
        if !json.is_empty() {
            artifact
                .write_snapshot(&json)
                .unwrap_or_else(|e| panic!("write {json}: {e}"));
            eprintln!("wrote {json}");
        }
        if !history.is_empty() {
            artifact
                .append_history(&history)
                .unwrap_or_else(|e| panic!("append {history}: {e}"));
            eprintln!("appended bench_run to {history}");
        }
    }
}
