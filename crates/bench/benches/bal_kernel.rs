//! Ladder vs bisection speed search inside the migratory BAL solver, across
//! the families that stress the per-round critical-speed search differently:
//! `general` (heterogeneous works, nested windows — many rounds), `laminar_nested`
//! (deep containment — many rounds with small remaining sets), and `crossing`
//! (staircase overlap — few rounds over wide alive sets).
//!
//! Two outputs, mirroring `yds_kernel`:
//!
//! * harness timing lines (`cargo bench -p ssp-bench --bench bal_kernel`),
//!   one benchmark per (family, n, strategy);
//! * a machine-readable artifact: set `SSP_BENCH_JSON=<path>` in measurement
//!   mode and a self-timed sweep (median of several reps, plus the
//!   `flow_computations` probe count per strategy) is written as JSON. The
//!   committed `BENCH_bal.json` at the repo root is produced this way;
//!   `SSP_BENCH_HISTORY=<path>` additionally appends the cells to the
//!   `BENCH_history.jsonl` trajectory for `speedscale bench-diff`.
//!
//! Each cell also carries a kernel column (`ladder_dinic_ms` /
//! `kernel_speedup`): the same ladder run with the WAP interval sweep
//! disabled (`WapKernel::Flow`), isolating the structure-aware fast path's
//! contribution from the ladder's probe-count savings. The two kernels must
//! agree on the final energy to the bit — asserted on every cell.

use ssp_bench::artifact::{Artifact, CellBuilder, CellMeta};
use ssp_bench::harness::{BenchmarkId, Criterion};
use ssp_bench::{fixture, trajectory};
use ssp_migratory::bal::{try_bal_with_wap_strategy, BalSolution, ProbeStrategy};
use ssp_migratory::wap::{Wap, WapKernel};
use ssp_model::{Budget, Instance};
use ssp_workloads::families;
use std::hint::black_box;
use std::time::Instant;

const SIZES: [usize; 4] = [50, 200, 800, 1600];
const FAMILIES: [&str; 3] = ["general", "laminar_nested", "crossing"];
const MACHINES: usize = 4;
const ALPHA: f64 = 2.0;

fn family_instance(family: &str, n: usize) -> Instance {
    match family {
        "general" => fixture("general", n, MACHINES, ALPHA),
        "laminar_nested" => families::laminar_nested(n, MACHINES, ALPHA, 0x9D5 + n as u64),
        "crossing" => families::crossing(n, MACHINES, ALPHA, 0xC0 + n as u64),
        _ => unreachable!("unknown family {family}"),
    }
}

/// One end-to-end solve (WAP construction included) under `strategy`,
/// with the WAP feasibility kernel pinned to `kernel`.
fn solve_with_kernel(
    instance: &Instance,
    strategy: ProbeStrategy,
    kernel: WapKernel,
) -> BalSolution {
    let (mut wap, intervals) = Wap::from_instance(instance);
    wap.set_kernel(kernel);
    try_bal_with_wap_strategy(instance, wap, intervals, Budget::unlimited(), strategy)
        .expect("BAL is total on feasible instances")
}

/// One end-to-end solve under the default (`Auto`) kernel dispatch.
fn solve(instance: &Instance, strategy: ProbeStrategy) -> BalSolution {
    solve_with_kernel(instance, strategy, WapKernel::Auto)
}

fn kernels(c: &mut Criterion) {
    for family in FAMILIES {
        let mut g = c.benchmark_group(format!("bal_kernel_{family}"));
        for n in [50, 200] {
            let instance = family_instance(family, n);
            g.bench_with_input(BenchmarkId::new("ladder", n), &instance, |b, inst| {
                b.iter(|| black_box(solve(inst, ProbeStrategy::Ladder).energy))
            });
            g.bench_with_input(BenchmarkId::new("bisection", n), &instance, |b, inst| {
                b.iter(|| black_box(solve(inst, ProbeStrategy::Bisection).energy))
            });
        }
        g.finish();
    }
}

/// One self-timed cell: median wall time and the flow-probe count.
fn timed_cell(instance: &Instance, strategy: ProbeStrategy, kernel: WapKernel) -> (f64, u64) {
    // Median of an odd number of reps; the large cells run once or thrice —
    // BAL at n=1600 is seconds, not microseconds.
    let reps = (2_000_000 / (instance.len() * instance.len())).clamp(3, 21) | 1;
    let mut probes = 0u64;
    let mut times: Vec<f64> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            let sol = solve_with_kernel(instance, strategy, kernel);
            let ms = t.elapsed().as_secs_f64() * 1e3;
            probes = sol.flow_computations as u64;
            black_box(sol.energy);
            ms
        })
        .collect();
    times.sort_by(f64::total_cmp);
    (times[reps / 2], probes)
}

/// Run the self-timed sweep and collect the cells of the JSON artifact,
/// plus their diff identities for the in-run regression check.
fn sweep_artifact() -> (Artifact, Vec<CellMeta>) {
    let mut cells = Vec::new();
    let mut metas = Vec::new();
    for family in FAMILIES {
        for n in SIZES {
            let instance = family_instance(family, n);
            let (ladder_ms, ladder_probes) =
                timed_cell(&instance, ProbeStrategy::Ladder, WapKernel::Auto);
            let (bisect_ms, bisect_probes) =
                timed_cell(&instance, ProbeStrategy::Bisection, WapKernel::Auto);
            // The kernel column: the same ladder run with the interval sweep
            // disabled (generic flow engine only), so the fast path's
            // contribution is visible separately from the ladder's probe
            // savings.
            let (ladder_dinic_ms, _) =
                timed_cell(&instance, ProbeStrategy::Ladder, WapKernel::Flow);
            let ladder_e = solve(&instance, ProbeStrategy::Ladder).energy;
            let bisect_e = solve(&instance, ProbeStrategy::Bisection).energy;
            let dinic_e =
                solve_with_kernel(&instance, ProbeStrategy::Ladder, WapKernel::Flow).energy;
            eprintln!(
                "bal_kernel {family} n={n}: ladder {ladder_ms:.2}ms/{ladder_probes} probes \
                 (dinic-only {ladder_dinic_ms:.2}ms), bisect {bisect_ms:.2}ms/{bisect_probes} probes"
            );
            let rel = (ladder_e - bisect_e).abs() / bisect_e.abs().max(1e-300);
            // Both strategies stop inside the probe classifier's 1e-9
            // feasibility tolerance, so their critical speeds (and energies)
            // agree to ~alpha * 1e-9 relative, not bit-for-bit.
            assert!(
                rel <= 1e-8,
                "strategy energy mismatch on {family} n={n}: ladder={ladder_e} bisect={bisect_e}"
            );
            // Kernel choice, by contrast, must be invisible: both kernels
            // classify every probe identically (the sweep's certificate and
            // cut sides are canonical), so the energies agree to the bit.
            assert_eq!(
                ladder_e.to_bits(),
                dinic_e.to_bits(),
                "kernel energy mismatch on {family} n={n}: sweep={ladder_e} dinic={dinic_e}"
            );
            let cell = CellBuilder::new(family, n)
                .metric_ms("ladder_ms", ladder_ms)
                .metric_ms("bisect_ms", bisect_ms)
                .metric_ms("ladder_dinic_ms", ladder_dinic_ms)
                .num("speedup", bisect_ms / ladder_ms, 2)
                .num("kernel_speedup", ladder_dinic_ms / ladder_ms, 2)
                .int("ladder_probes", ladder_probes)
                .int("bisect_probes", bisect_probes)
                .num("energy", ladder_e, 6);
            metas.push(cell.meta());
            cells.push(cell.render());
        }
    }
    (
        Artifact {
            bench: "bal_kernel".to_string(),
            alpha: ALPHA,
            unit: "ms_median".to_string(),
            cells,
        },
        metas,
    )
}

fn main() {
    let mut c = Criterion::from_args();
    kernels(&mut c);
    c.final_summary();
    let measure = std::env::args().any(|a| a == "--bench");
    let json = std::env::var("SSP_BENCH_JSON").unwrap_or_default();
    let history = std::env::var("SSP_BENCH_HISTORY").unwrap_or_default();
    if measure && (!json.is_empty() || !history.is_empty()) {
        let (artifact, metas) = sweep_artifact();
        if !history.is_empty() {
            // Compare against the trajectory before appending this run; a
            // regressed cell re-runs once per strategy/kernel variant under
            // a probe session so the attached trace splits "more flow
            // probes" from "slower probes".
            trajectory::check_and_attach("bal_kernel", &metas, &history, |family, n| {
                let instance = family_instance(family, n);
                black_box(solve(&instance, ProbeStrategy::Ladder).energy);
                black_box(solve(&instance, ProbeStrategy::Bisection).energy);
                black_box(
                    solve_with_kernel(&instance, ProbeStrategy::Ladder, WapKernel::Flow).energy,
                );
            });
        }
        if !json.is_empty() {
            artifact
                .write_snapshot(&json)
                .unwrap_or_else(|e| panic!("write {json}: {e}"));
            eprintln!("wrote {json}");
        }
        if !history.is_empty() {
            artifact
                .append_history(&history)
                .unwrap_or_else(|e| panic!("append {history}: {e}"));
            eprintln!("appended bench_run to {history}");
        }
    }
}
