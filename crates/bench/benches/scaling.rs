//! Figure 3 — scaling of the two headline algorithms with instance size
//! (wall-clock complement of the flow-count series in `ssp-exper exp6`).

use ssp_bench::harness::{BenchmarkId, Criterion, Throughput};
use ssp_bench::{criterion_group, fixture};
use ssp_core::assignment::assignment_energy;
use ssp_core::rr::rr_assignment;
use ssp_migratory::bal::bal;
use std::hint::black_box;

fn bal_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("scaling_bal");
    g.sample_size(10);
    for n in [25usize, 50, 100, 200] {
        let inst = fixture("general", n, 4, 2.0);
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &inst, |b, inst| {
            b.iter(|| black_box(bal(inst).energy))
        });
    }
    g.finish();
}

fn rr_yds_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("scaling_rr_yds");
    for n in [25usize, 100, 400, 1600] {
        let inst = fixture("general", n, 4, 2.0);
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &inst, |b, inst| {
            b.iter(|| black_box(assignment_energy(inst, &rr_assignment(inst))))
        });
    }
    g.finish();
}

criterion_group!(scaling, bal_scaling, rr_yds_scaling);

fn main() {
    let mut c = Criterion::from_args();
    scaling(&mut c);
    c.final_summary();
    c.emit_artifact("scaling", 2.0);
}
