//! One benchmark per reproduced table/figure (see `EXPERIMENTS.md`): each
//! target times the computational kernel that regenerates the artifact.

use ssp_bench::harness::{BenchmarkId, Criterion};
use ssp_bench::{criterion_group, fixture};
use ssp_core::assignment::assignment_energy;
use ssp_core::classified::classified_assignment;
use ssp_core::classified::classified_assignment_with_base;
use ssp_core::exact::exact_nonmigratory;
use ssp_core::hardness::crossing;
use ssp_core::online::{avr_m_energy, oa_m};
use ssp_core::relax::relax_round;
use ssp_core::relax::{relax_round_with, RoundingOrder};
use ssp_core::rr::rr_assignment;
use ssp_core::throughput::max_throughput_greedy;
use ssp_migratory::bal::bal;
use ssp_migratory::bounded::min_peak_speed;
use ssp_migratory::kkt::certify;
use ssp_migratory::mbal::mbal;
use ssp_model::numeric::Tol;
use ssp_model::quantize::{quantize_speeds, SpeedLevels};
use ssp_single::flowtime::min_flow_time_budget;
use std::hint::black_box;

/// Table 1 — RR + per-machine YDS (the optimal algorithm) and the exact
/// solver it is checked against.
fn exp1_rr_optimal(c: &mut Criterion) {
    let mut g = c.benchmark_group("exp1_rr_optimal");
    let small = fixture("unit_agreeable", 10, 2, 2.0);
    g.bench_function("exact_n10_m2", |b| {
        b.iter(|| black_box(exact_nonmigratory(&small).energy))
    });
    let big = fixture("unit_agreeable", 200, 4, 2.0);
    g.bench_function("rr_yds_n200_m4", |b| {
        b.iter(|| black_box(assignment_energy(&big, &rr_assignment(&big))))
    });
    g.finish();
}

/// Table 2 — exact branch-and-bound on the hardness gadgets.
fn exp2_hardness(c: &mut Criterion) {
    let mut g = c.benchmark_group("exp2_hardness");
    for n in [7usize, 9, 11] {
        let inst = crossing(n, 2, 2.0);
        g.bench_with_input(BenchmarkId::new("exact_crossing", n), &inst, |b, inst| {
            b.iter(|| black_box(exact_nonmigratory(inst).nodes))
        });
    }
    g.finish();
}

/// Table 3 / Figure 1 — RelaxRound on unit-work arbitrary-deadline inputs.
fn exp3_unit_approx(c: &mut Criterion) {
    let mut g = c.benchmark_group("exp3_unit_approx");
    for m in [2usize, 8] {
        let inst = fixture("unit_arbitrary", 100, m, 2.0);
        g.bench_with_input(BenchmarkId::new("relax_round_n100", m), &inst, |b, inst| {
            b.iter(|| black_box(assignment_energy(inst, &relax_round(inst))))
        });
    }
    g.finish();
}

/// Table 4 / Figure 2 — ClassifiedRR on agreeable heterogeneous works.
fn exp4_agreeable_approx(c: &mut Criterion) {
    let mut g = c.benchmark_group("exp4_agreeable_approx");
    for m in [2usize, 8] {
        let inst = fixture("weighted_agreeable", 100, m, 2.0);
        g.bench_with_input(BenchmarkId::new("classified_n100", m), &inst, |b, inst| {
            b.iter(|| black_box(assignment_energy(inst, &classified_assignment(inst))))
        });
    }
    g.finish();
}

/// Table 5 — the migration-gap kernel: exact non-migratory vs BAL.
fn exp5_migration_gap(c: &mut Criterion) {
    let mut g = c.benchmark_group("exp5_migration_gap");
    let inst = fixture("general", 9, 3, 2.0);
    g.bench_function("exact_vs_bal_n9_m3", |b| {
        b.iter(|| {
            let gap = exact_nonmigratory(&inst).energy / bal(&inst).energy;
            black_box(gap)
        })
    });
    g.finish();
}

/// Figure 4 — one MBAL budget probe (outer binary search over BAL).
fn exp7_mbal(c: &mut Criterion) {
    let mut g = c.benchmark_group("exp7_mbal");
    g.sample_size(10);
    // Deadline-free variant of the fixture (the budget, not deadlines, must
    // be the binding constraint).
    let base = fixture("bursty", 16, 2, 2.5);
    let jobs: Vec<ssp_model::Job> = base
        .jobs()
        .iter()
        .map(|j| ssp_model::Job::new(j.id.0, j.work, j.release, 1e7))
        .collect();
    let inst = ssp_model::Instance::new(jobs, 2, 2.5).unwrap();
    let budget = inst.total_work() * 2.0;
    g.bench_function("mbal_n16_m2", |b| {
        b.iter(|| black_box(mbal(&inst, budget).unwrap().makespan))
    });
    g.finish();
}

/// Table 6 — the online algorithms.
fn exp8_online(c: &mut Criterion) {
    let mut g = c.benchmark_group("exp8_online");
    let inst = fixture("bursty", 48, 4, 2.0);
    g.bench_function("avr_m_n48_m4", |b| {
        b.iter(|| black_box(avr_m_energy(&inst)))
    });
    g.sample_size(10);
    g.bench_function("oa_m_n48_m4", |b| {
        b.iter(|| black_box(oa_m(&inst).energy(2.0)))
    });
    g.finish();
}

/// Table 7 — BAL plus its KKT certificate.
fn exp9_certify(c: &mut Criterion) {
    let mut g = c.benchmark_group("exp9_certify");
    let inst = fixture("general", 30, 3, 2.0);
    g.bench_function("bal_plus_kkt_n30_m3", |b| {
        b.iter(|| {
            let sol = bal(&inst);
            certify(&inst, &sol, Tol::rel(1e-6)).unwrap();
            black_box(sol.energy)
        })
    });
    g.finish();
}

/// Table 8 — the ablation kernels (alternative rounding order and class
/// base, same fixtures as EXP-3/4).
fn exp10_ablations(c: &mut Criterion) {
    let mut g = c.benchmark_group("exp10_ablations");
    let unit = fixture("unit_arbitrary", 80, 4, 2.5);
    g.bench_function("relax_lpt_n80", |b| {
        b.iter(|| {
            black_box(assignment_energy(
                &unit,
                &relax_round_with(&unit, RoundingOrder::LongestRelaxedTime),
            ))
        })
    });
    let weighted = fixture("weighted_agreeable", 80, 4, 2.5);
    g.bench_function("classified_base8_n80", |b| {
        b.iter(|| {
            black_box(assignment_energy(
                &weighted,
                &classified_assignment_with_base(&weighted, 8.0),
            ))
        })
    });
    g.finish();
}

/// Table 9 — discrete-DVFS quantization of a BAL schedule.
fn exp11_quantize(c: &mut Criterion) {
    let inst = fixture("general", 40, 3, 2.5);
    let sol = bal(&inst);
    let schedule = sol.schedule(&inst);
    let levels = SpeedLevels::geometric(
        sol.speeds.min_speed(),
        sol.speeds.max_speed() * (1.0 + 1e-9),
        8,
    )
    .unwrap();
    c.bench_function("exp11_quantize_n40_8levels", |b| {
        b.iter(|| black_box(quantize_speeds(&schedule, &levels).unwrap().energy(2.5)))
    });
}

/// Table 10 — throughput under a speed cap (greedy admission).
fn exp12_throughput(c: &mut Criterion) {
    let inst = fixture("unit_arbitrary", 14, 2, 2.0);
    let cap = min_peak_speed(&inst) * 0.6;
    c.bench_function("exp12_greedy_throughput_n14", |b| {
        b.iter(|| black_box(max_throughput_greedy(&inst, cap).throughput()))
    });
}

/// Figure 5 — the flow-time budget DP (including the lambda bisection).
fn exp13_flowtime(c: &mut Criterion) {
    let releases: Vec<f64> = (0..40)
        .map(|k| k as f64 * 0.8 + (k % 3) as f64 * 0.1)
        .collect();
    c.bench_function("exp13_flow_budget_n40", |b| {
        b.iter(|| black_box(min_flow_time_budget(&releases, 2.0, 60.0).total_flow))
    });
}

criterion_group!(
    tables,
    exp1_rr_optimal,
    exp2_hardness,
    exp3_unit_approx,
    exp4_agreeable_approx,
    exp5_migration_gap,
    exp7_mbal,
    exp8_online,
    exp9_certify,
    exp10_ablations,
    exp11_quantize,
    exp12_throughput,
    exp13_flowtime
);
fn main() {
    let mut c = Criterion::from_args();
    tables(&mut c);
    c.final_summary();
    c.emit_artifact("tables", 2.0);
}
