//! Micro-benchmarks of the substrates: the max-flow engine on WAP-shaped
//! layered networks (the `f(n)` primitive in the paper's complexity bound),
//! the single-processor YDS solver, and the interval decomposition.

use ssp_bench::harness::{BenchmarkId, Criterion};
use ssp_bench::{criterion_group, fixture};
use ssp_maxflow::{FlowNetwork, PushRelabel};
use ssp_migratory::wap::Wap;
use ssp_model::IntervalSet;
use ssp_single::yds::yds;
use std::hint::black_box;

/// The `f(n)` primitive: a max flow on the three-layer WAP network.
fn wap_maxflow(c: &mut Criterion) {
    let mut g = c.benchmark_group("micro_wap_maxflow");
    for n in [50usize, 200, 800] {
        let inst = fixture("general", n, 4, 2.0);
        let (wap, _) = Wap::from_instance(&inst);
        let v = inst.max_density() * 1.2;
        let p: Vec<f64> = inst.jobs().iter().map(|j| j.work / v).collect();
        g.bench_with_input(BenchmarkId::from_parameter(n), &(wap, p), |b, (wap, p)| {
            b.iter(|| black_box(wap.solve(p).value()))
        });
    }
    g.finish();
}

/// Raw Dinic on a dense layered graph.
fn dinic_dense(c: &mut Criterion) {
    c.bench_function("micro_dinic_dense_200x50", |b| {
        b.iter(|| {
            let (jobs, ivals) = (200usize, 50usize);
            let t = 1 + jobs + ivals;
            let mut g = FlowNetwork::new(t + 1);
            for i in 0..jobs {
                g.add_edge(0, 1 + i, 1.0);
                for j in 0..ivals {
                    if (i + j) % 3 == 0 {
                        g.add_edge(1 + i, 1 + jobs + j, 0.5);
                    }
                }
            }
            for j in 0..ivals {
                g.add_edge(1 + jobs + j, t, 4.0);
            }
            black_box(g.max_flow(0, t))
        })
    });
}

/// Single-processor YDS (the per-machine subroutine of every paper
/// algorithm).
fn yds_sizes(c: &mut Criterion) {
    let mut g = c.benchmark_group("micro_yds");
    for n in [25usize, 100, 400] {
        let inst = fixture("general", n, 1, 2.0);
        let jobs = inst.jobs().to_vec();
        g.bench_with_input(BenchmarkId::from_parameter(n), &jobs, |b, jobs| {
            b.iter(|| black_box(yds(jobs, 2.0).energy))
        });
    }
    g.finish();
}

/// Interval decomposition + alive sets.
fn interval_build(c: &mut Criterion) {
    let inst = fixture("general", 800, 4, 2.0);
    let jobs = inst.jobs().to_vec();
    c.bench_function("micro_intervals_n800", |b| {
        b.iter(|| black_box(IntervalSet::from_jobs(&jobs).len()))
    });
}

/// Engine shoot-out on the WAP-shaped layered networks this workspace
/// builds: Dinic (the default) vs push-relabel (the cross-check engine).
fn engine_comparison(c: &mut Criterion) {
    let mut g = c.benchmark_group("micro_engines");
    let (jobs, ivals) = (200usize, 50usize);
    let t = 1 + jobs + ivals;
    let build_edges = || {
        let mut edges = Vec::new();
        for i in 0..jobs {
            edges.push((0, 1 + i, 1.0 + (i % 7) as f64 * 0.2));
            for j in 0..ivals {
                if (i + j) % 3 == 0 {
                    edges.push((1 + i, 1 + jobs + j, 0.5));
                }
            }
        }
        for j in 0..ivals {
            edges.push((1 + jobs + j, t, 4.0));
        }
        edges
    };
    let edges = build_edges();
    g.bench_function("dinic", |b| {
        b.iter(|| {
            let mut net = FlowNetwork::new(t + 1);
            for &(u, v, c) in &edges {
                net.add_edge(u, v, c);
            }
            black_box(net.max_flow(0, t))
        })
    });
    g.bench_function("push_relabel", |b| {
        b.iter(|| {
            let mut net = PushRelabel::new(t + 1);
            for &(u, v, c) in &edges {
                net.add_edge(u, v, c);
            }
            black_box(net.max_flow(0, t))
        })
    });
    g.finish();
}

/// Parametric bisection kernel: a fixed geometric ladder of uniform-speed
/// probes (the shape of one BAL round), solved by rebuilding the WAP
/// network per probe (cold) vs re-parameterizing one warm solver — the
/// speedup EXP-18 certifies, tracked here as a trajectory point.
fn parametric_bisection(c: &mut Criterion) {
    let mut g = c.benchmark_group("micro_parametric_bisection");
    let inst = fixture("general", 200, 4, 2.0);
    let (wap, _) = Wap::from_instance(&inst);
    let works: Vec<f64> = inst.jobs().iter().map(|j| j.work).collect();
    let v_hi = inst.max_density() * 4.0;
    // 24 probes walking the speed down ~2×, like a bisection transcript.
    let speeds: Vec<f64> = (0..24).map(|k| v_hi * 0.97f64.powi(k)).collect();
    let mut p = vec![0.0; works.len()];
    g.bench_function("cold", |b| {
        b.iter(|| {
            let mut feasible = 0usize;
            for &v in &speeds {
                for (pi, w) in p.iter_mut().zip(&works) {
                    *pi = w / v;
                }
                feasible += usize::from(wap.solve(&p).feasible());
            }
            black_box(feasible)
        })
    });
    g.bench_function("warm", |b| {
        b.iter(|| {
            let mut solver = wap.solver();
            let mut feasible = 0usize;
            for &v in &speeds {
                for (pi, w) in p.iter_mut().zip(&works) {
                    *pi = w / v;
                }
                solver.solve(&p);
                feasible += usize::from(solver.feasible());
            }
            black_box(feasible)
        })
    });
    g.finish();
}

criterion_group!(
    micro,
    wap_maxflow,
    dinic_dense,
    yds_sizes,
    interval_build,
    engine_comparison,
    parametric_bisection
);
fn main() {
    let mut c = Criterion::from_args();
    micro(&mut c);
    c.final_summary();
    c.emit_artifact("micro", 2.0);
}
