//! Machine-readable bench artifacts: snapshots and the history trajectory.
//!
//! Measured bench runs serialize their cells twice:
//!
//! * **Snapshot** (`SSP_BENCH_JSON=<path>`): one pretty-printed JSON object
//!   — the committed `BENCH_*.json` files at the repo root.
//! * **Trajectory** (`SSP_BENCH_HISTORY=<path>`): one flat JSON object
//!   *appended* per run to `BENCH_history.jsonl`, tagged with
//!   `"type":"bench_run"` and the git revision, so the repo accumulates a
//!   timing trajectory that `speedscale bench-diff` can gate on.
//!
//! Cells are built with [`CellBuilder`]; by convention string fields plus
//! `n` identify a cell and `*_ms` fields are the gated metrics (see
//! `docs/OBSERVABILITY.md`).

use std::fmt::Write as _;

/// Incrementally builds one cell object (`{"family": ..., "n": ..., ...}`).
#[derive(Debug, Clone)]
pub struct CellBuilder {
    fields: Vec<(String, String)>,
}

impl CellBuilder {
    /// Start a cell identified by `family` and `n` (the diff key).
    pub fn new(family: &str, n: usize) -> Self {
        CellBuilder {
            fields: vec![
                ("family".into(), format!("\"{family}\"")),
                ("n".into(), n.to_string()),
            ],
        }
    }

    /// Add a timing metric in milliseconds (4 decimals). `name` should end
    /// in `_ms` so `bench-diff` picks it up.
    pub fn metric_ms(mut self, name: &str, ms: f64) -> Self {
        self.fields.push((name.into(), format!("{ms:.4}")));
        self
    }

    /// Add a contextual float (not gated) with the given decimal places.
    pub fn num(mut self, name: &str, value: f64, decimals: usize) -> Self {
        self.fields
            .push((name.into(), format!("{value:.decimals$}")));
        self
    }

    /// Add a contextual integer (not gated).
    pub fn int(mut self, name: &str, value: u64) -> Self {
        self.fields.push((name.into(), value.to_string()));
        self
    }

    /// Render the cell as a single-line JSON object.
    pub fn render(&self) -> String {
        let mut out = String::from("{");
        for (i, (name, value)) in self.fields.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "\"{name}\": {value}");
        }
        out.push('}');
        out
    }

    /// The cell's diff identity and gated metrics, derived by the same
    /// convention the `bench-diff`/`bench report` readers apply: string
    /// fields plus `n` (in builder order) form the key, `*_ms` fields are
    /// the metrics. Used by the trajectory layer to compare a freshly
    /// measured cell against its history without re-parsing the rendered
    /// JSON.
    pub fn meta(&self) -> CellMeta {
        let mut key = String::new();
        let mut metrics = Vec::new();
        for (name, value) in &self.fields {
            if value.starts_with('"') || name == "n" {
                if !key.is_empty() {
                    key.push(',');
                }
                let _ = write!(key, "{name}={}", value.trim_matches('"'));
            } else if name.ends_with("_ms") {
                if let Ok(ms) = value.parse::<f64>() {
                    metrics.push((name.clone(), ms));
                }
            }
        }
        CellMeta { key, metrics }
    }
}

/// A cell's identity and gated metrics (see [`CellBuilder::meta`]).
#[derive(Debug, Clone, PartialEq)]
pub struct CellMeta {
    /// Stable diff key, e.g. `family=agreeable,n=200`.
    pub key: String,
    /// `(name, milliseconds)` for every `*_ms` field, in builder order.
    pub metrics: Vec<(String, f64)>,
}

/// One measured bench run, ready to serialize as snapshot and/or history.
#[derive(Debug, Clone)]
pub struct Artifact {
    /// Bench id, e.g. `"yds_kernel"`.
    pub bench: String,
    /// Power exponent the run used.
    pub alpha: f64,
    /// Unit of the timing metrics, e.g. `"ms_median"`.
    pub unit: String,
    /// Rendered cells (from [`CellBuilder::render`]).
    pub cells: Vec<String>,
}

impl Artifact {
    /// Pretty-printed snapshot form (the committed `BENCH_*.json` layout).
    pub fn snapshot_json(&self) -> String {
        format!(
            "{{\n  \"bench\": \"{}\",\n  \"alpha\": {},\n  \"unit\": \"{}\",\n  \"cells\": [\n{}\n  ]\n}}\n",
            self.bench,
            self.alpha,
            self.unit,
            self.cells
                .iter()
                .map(|c| format!("    {c}"))
                .collect::<Vec<_>>()
                .join(",\n")
        )
    }

    /// Flat one-line history form, tagged with the run's git revision.
    /// Collects the run environment via [`RunMeta::collect`]; see
    /// [`Artifact::history_line_with`] for the format.
    pub fn history_line(&self, rev: &str) -> String {
        self.history_line_with(rev, &RunMeta::collect())
    }

    /// [`Artifact::history_line`] with an explicit [`RunMeta`] (injectable
    /// for tests). The v1 prefix (`type`/`bench`/`rev`/`alpha`/`unit`) is
    /// stable; the run metadata rides between `unit` and `cells`, and
    /// readers must tolerate its absence (v1 lines have none) — `ts` is
    /// itself omitted when the commit timestamp is unknown.
    pub fn history_line_with(&self, rev: &str, meta: &RunMeta) -> String {
        let ts = meta
            .commit_ts
            .map(|t| format!("\"ts\": {t}, "))
            .unwrap_or_default();
        format!(
            "{{\"type\": \"bench_run\", \"bench\": \"{}\", \"rev\": \"{}\", \"alpha\": {}, \"unit\": \"{}\", {}\"threads\": {}, \"host\": \"{}\", \"cells\": [{}]}}",
            self.bench,
            rev,
            self.alpha,
            self.unit,
            ts,
            meta.threads,
            meta.host,
            self.cells.join(", ")
        )
    }

    /// Write the snapshot to `path` (resolved by
    /// [`resolve_artifact_path`]).
    pub fn write_snapshot(&self, path: &str) -> std::io::Result<()> {
        std::fs::write(resolve_artifact_path(path), self.snapshot_json())
    }

    /// Append one history line (with the current git revision) to `path`
    /// (resolved by [`resolve_artifact_path`]), creating the file if
    /// needed.
    pub fn append_history(&self, path: &str) -> std::io::Result<()> {
        use std::io::Write as _;
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(resolve_artifact_path(path))?;
        writeln!(file, "{}", self.history_line(&git_rev()))
    }
}

/// Run-level environment recorded on every `bench_run` history line, so
/// the trajectory can separate code regressions from environment changes
/// (a different machine, a different thread width) when reading a history
/// accumulated across hosts.
#[derive(Debug, Clone, PartialEq)]
pub struct RunMeta {
    /// Unix timestamp of the HEAD commit (`git show -s --format=%ct`);
    /// `None` outside a repository. Orders trajectory points by *code*
    /// age, unlike the run's wall clock.
    pub commit_ts: Option<u64>,
    /// Effective worker thread count: `SSP_THREADS` when set (the knob the
    /// parallel probe ladder honors), the machine's available parallelism
    /// otherwise.
    pub threads: u64,
    /// Short host fingerprint (hex hash of hostname/OS/arch/cpu count):
    /// cross-host timing comparisons are noise, and the fingerprint lets
    /// readers notice.
    pub host: String,
}

impl RunMeta {
    /// Collect the metadata of the current process/repository.
    pub fn collect() -> Self {
        let commit_ts = std::process::Command::new("git")
            .args(["show", "-s", "--format=%ct", "HEAD"])
            .output()
            .ok()
            .filter(|o| o.status.success())
            .and_then(|o| String::from_utf8(o.stdout).ok())
            .and_then(|s| s.trim().parse::<u64>().ok());
        let cpus = std::thread::available_parallelism().map_or(1, |p| p.get() as u64);
        let threads = std::env::var("SSP_THREADS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .filter(|&t| t > 0)
            .unwrap_or(cpus);
        let hostname = std::fs::read_to_string("/proc/sys/kernel/hostname")
            .map(|s| s.trim().to_string())
            .ok()
            .or_else(|| std::env::var("HOSTNAME").ok())
            .unwrap_or_else(|| "unknown".to_string());
        // FNV-1a over the identity tuple; 8 hex digits is plenty to tell
        // hosts apart without leaking the hostname into committed files.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in format!(
            "{hostname}/{}/{}/{cpus}",
            std::env::consts::OS,
            std::env::consts::ARCH
        )
        .bytes()
        {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        RunMeta {
            commit_ts,
            threads,
            host: format!("{:08x}", (h >> 32) as u32 ^ h as u32),
        }
    }
}

/// Resolve an artifact path: absolute paths pass through; relative paths
/// are anchored at the workspace root — the nearest ancestor of the
/// current directory holding a `Cargo.lock`. Cargo runs bench binaries
/// with the *package* directory as cwd, so without this
/// `SSP_BENCH_JSON=BENCH_new.json` would land in `crates/bench/` instead
/// of next to the committed `BENCH_*.json` baselines at the repo root
/// (where CI's `bench-diff` step expects it).
pub fn resolve_artifact_path(path: &str) -> std::path::PathBuf {
    let p = std::path::Path::new(path);
    if p.is_absolute() {
        return p.to_path_buf();
    }
    let mut dir = match std::env::current_dir() {
        Ok(d) => d,
        Err(_) => return p.to_path_buf(),
    };
    loop {
        if dir.join("Cargo.lock").is_file() {
            return dir.join(p);
        }
        if !dir.pop() {
            return p.to_path_buf();
        }
    }
}

/// The short git revision of the working tree, or `"unknown"` outside a
/// repository (artifacts must still be writable from exported tarballs).
pub fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_artifact_paths_anchor_at_the_workspace_root() {
        // Test binaries run with the package dir as cwd; the resolved
        // parent must be the workspace root (it holds Cargo.lock).
        let resolved = resolve_artifact_path("BENCH_test_probe.json");
        let parent = resolved.parent().expect("resolved path has a parent");
        assert!(
            parent.join("Cargo.lock").is_file(),
            "resolved {resolved:?} is not anchored at a workspace root"
        );
        assert!(resolve_artifact_path("/abs/x.json").is_absolute());
    }

    fn sample() -> Artifact {
        Artifact {
            bench: "yds_kernel".into(),
            alpha: 2.0,
            unit: "ms_median".into(),
            cells: vec![
                CellBuilder::new("agreeable", 50)
                    .metric_ms("fast_ms", 0.0071239)
                    .metric_ms("ref_ms", 0.0063)
                    .num("speedup", 0.886, 2)
                    .int("peels", 12)
                    .render(),
                CellBuilder::new("crossing", 200)
                    .metric_ms("fast_ms", 0.113)
                    .render(),
            ],
        }
    }

    #[test]
    fn cell_builder_renders_flat_json() {
        let cell = &sample().cells[0];
        assert_eq!(
            cell,
            "{\"family\": \"agreeable\", \"n\": 50, \"fast_ms\": 0.0071, \
             \"ref_ms\": 0.0063, \"speedup\": 0.89, \"peels\": 12}"
        );
    }

    #[test]
    fn snapshot_matches_committed_layout() {
        let snap = sample().snapshot_json();
        assert!(snap.starts_with("{\n  \"bench\": \"yds_kernel\",\n"));
        assert!(snap.contains("  \"cells\": [\n    {\"family\": \"agreeable\""));
        assert!(snap.ends_with("\n  ]\n}\n"));
    }

    #[test]
    fn history_line_is_single_line_and_tagged() {
        let line = sample().history_line("abc1234");
        assert!(!line.contains('\n'));
        assert!(line.starts_with(
            "{\"type\": \"bench_run\", \"bench\": \"yds_kernel\", \"rev\": \"abc1234\""
        ));
        assert!(line.contains("\"cells\": [{\"family\""));
    }

    #[test]
    fn cell_meta_matches_reader_convention() {
        let meta = CellBuilder::new("agreeable", 50)
            .metric_ms("fast_ms", 0.0071239)
            .metric_ms("ref_ms", 0.0063)
            .num("speedup", 0.886, 2)
            .int("peels", 12)
            .meta();
        assert_eq!(meta.key, "family=agreeable,n=50");
        assert_eq!(
            meta.metrics,
            vec![
                ("fast_ms".to_string(), 0.0071),
                ("ref_ms".to_string(), 0.0063)
            ]
        );
    }

    #[test]
    fn history_line_carries_run_metadata() {
        let meta = RunMeta {
            commit_ts: Some(1754500000),
            threads: 4,
            host: "ab12cd34".into(),
        };
        let line = sample().history_line_with("abc1234", &meta);
        assert!(!line.contains('\n'));
        // v1 prefix stays stable; metadata rides between unit and cells.
        assert!(line.starts_with(
            "{\"type\": \"bench_run\", \"bench\": \"yds_kernel\", \"rev\": \"abc1234\""
        ));
        assert!(line.contains(
            "\"unit\": \"ms_median\", \"ts\": 1754500000, \"threads\": 4, \
             \"host\": \"ab12cd34\", \"cells\": ["
        ));
        // Unknown commit timestamp: the ts field is omitted entirely.
        let no_ts = sample().history_line_with(
            "abc1234",
            &RunMeta {
                commit_ts: None,
                ..meta
            },
        );
        assert!(!no_ts.contains("\"ts\""));
        assert!(no_ts.contains("\"threads\": 4"));
    }

    #[test]
    fn run_meta_collects_without_panicking() {
        let meta = RunMeta::collect();
        assert!(meta.threads >= 1);
        assert_eq!(meta.host.len(), 8);
        assert!(meta.host.chars().all(|c| c.is_ascii_hexdigit()));
    }

    #[test]
    fn append_history_accumulates_lines() {
        let path =
            std::env::temp_dir().join(format!("ssp_bench_hist_{}.jsonl", std::process::id()));
        let p = path.to_string_lossy().into_owned();
        std::fs::remove_file(&path).ok();
        sample().append_history(&p).unwrap();
        sample().append_history(&p).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 2);
        assert!(text.lines().all(|l| l.contains("\"type\": \"bench_run\"")));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn git_rev_never_panics() {
        assert!(!git_rev().is_empty());
    }
}
