//! Bench-side trajectory analysis: history-calibrated regression checks
//! and auto-attached probe traces.
//!
//! A measured bench run knows two things the offline report does not: it
//! holds the freshly measured cells *before* they are appended to
//! `BENCH_history.jsonl`, and it can still re-run any cell. This module
//! closes that loop. [`detect_regressions`] compares the new cells against
//! each cell's own trailing history window using the shared
//! `ssp_probe::calib` noise bands, and [`write_attachment`] stores a probe
//! trace of a regressed cell next to the artifact (under
//! [`TRACE_DIR_ENV`]), so `ssp bench report` can later link "got slower"
//! to "which span / which counter" via `trace diff` without a manual
//! repro.
//!
//! The history scanner here is intentionally a *reader of our own
//! writer*: it parses the `bench_run` lines `ssp_bench::artifact` emits
//! and skips anything else. The full artifact parser (snapshots, foreign
//! layouts, warning diagnostics) lives in the `speedscale` crate's
//! `benchdata` module — it cannot be used here because `speedscale`
//! depends on this crate.

use crate::artifact::{resolve_artifact_path, CellMeta};
use std::path::PathBuf;

/// Environment variable enabling auto-attached traces: the directory
/// (resolved like artifact paths) regressed-cell traces are written to.
pub const TRACE_DIR_ENV: &str = "SSP_BENCH_TRACE_DIR";

/// Trailing history runs a cell's noise band is calibrated over.
pub const DEFAULT_WINDOW: usize = 8;

/// Noise floor in milliseconds: cells whose fresh median sits below this
/// never count as regressed (same convention as `bench-diff`).
pub const NOISE_FLOOR_MS: f64 = 0.05;

/// One calibrated crossing: a freshly measured metric outside its cell's
/// historical noise band.
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// Cell key (`family=...,n=...`).
    pub key: String,
    /// Metric name (`fast_ms`, `ladder_ms`, ...).
    pub metric: String,
    /// Freshly measured milliseconds.
    pub latest: f64,
    /// Baseline: median of the trailing history window.
    pub baseline: f64,
    /// The calibrated relative band the latest value crossed.
    pub band: f64,
    /// Relative slowdown, `latest/baseline - 1`.
    pub delta: f64,
}

/// Compare freshly measured `cells` of `bench` against `history_text`
/// (the accumulated `BENCH_history.jsonl`, read *before* appending this
/// run). For every `*_ms` metric with at least one historical sample, the
/// baseline is the median of the trailing `window` samples and the band
/// is `ssp_probe::calib::noise_band` over them; crossings above the
/// [`NOISE_FLOOR_MS`] floor are returned in cell order.
pub fn detect_regressions(
    bench: &str,
    cells: &[CellMeta],
    history_text: &str,
    window: usize,
) -> Vec<Regression> {
    let runs = history_cells(history_text, bench);
    let mut out = Vec::new();
    for cell in cells {
        for (metric, latest) in &cell.metrics {
            let samples: Vec<f64> = runs
                .iter()
                .filter_map(|run| {
                    run.iter()
                        .find(|(key, _)| key == &cell.key)
                        .and_then(|(_, metrics)| {
                            metrics.iter().find(|(m, _)| m == metric).map(|&(_, v)| v)
                        })
                })
                .filter(|v| v.is_finite())
                .collect();
            let start = samples.len().saturating_sub(window.max(1));
            let trailing = &samples[start..];
            let Some(baseline) = ssp_probe::calib::median(trailing) else {
                continue;
            };
            let band = ssp_probe::calib::noise_band(trailing);
            if ssp_probe::calib::crosses(*latest, baseline, band, NOISE_FLOOR_MS) {
                out.push(Regression {
                    key: cell.key.clone(),
                    metric: metric.clone(),
                    latest: *latest,
                    baseline,
                    band,
                    delta: latest / baseline - 1.0,
                });
            }
        }
    }
    out
}

/// The auto-attach trace directory, if enabled via [`TRACE_DIR_ENV`].
pub fn trace_dir() -> Option<String> {
    std::env::var(TRACE_DIR_ENV).ok().filter(|d| !d.is_empty())
}

/// A cell key as a filesystem-safe file stem: every character outside
/// `[A-Za-z0-9._-]` becomes `_`.
pub fn sanitize_key(key: &str) -> String {
    key.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-') {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Where a cell's attached trace lives: `<dir>/<bench>__<key>.jsonl`,
/// with `dir` resolved like artifact paths (relative → workspace root).
pub fn attachment_path(dir: &str, bench: &str, key: &str) -> PathBuf {
    resolve_artifact_path(dir).join(format!("{bench}__{}.jsonl", sanitize_key(key)))
}

/// Write a regressed cell's probe trace to [`attachment_path`], creating
/// the directory if needed. Returns the written path.
pub fn write_attachment(
    dir: &str,
    bench: &str,
    key: &str,
    trace: &ssp_probe::Trace,
) -> std::io::Result<PathBuf> {
    let path = attachment_path(dir, bench, key);
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(&path, trace.to_jsonl())?;
    Ok(path)
}

/// Re-run one untimed iteration of a regressed cell under a probe session
/// and write the trace. Returns the path, or `None` when the probe is
/// busy elsewhere or the write failed (attachment is best-effort — it
/// must never fail the bench run itself).
pub fn attach_probe_rerun<O>(
    dir: &str,
    bench: &str,
    key: &str,
    mut rerun: impl FnMut() -> O,
) -> Option<PathBuf> {
    let session = ssp_probe::Session::begin()?;
    std::hint::black_box(rerun());
    let trace = session.end();
    match write_attachment(dir, bench, key, &trace) {
        Ok(path) => {
            eprintln!(
                "attached probe trace for regressed cell {key}: {}",
                path.display()
            );
            Some(path)
        }
        Err(e) => {
            eprintln!("warning: cannot write trace attachment for {key}: {e}");
            None
        }
    }
}

/// Parse a `family=...,n=...` cell key back into its parts, so a bench
/// main can rebuild the regressed instance for a probe re-run.
pub fn parse_family_n(key: &str) -> Option<(String, usize)> {
    let mut family = None;
    let mut n = None;
    for part in key.split(',') {
        let (k, v) = part.split_once('=')?;
        match k {
            "family" => family = Some(v.to_string()),
            "n" => n = v.parse().ok(),
            _ => {}
        }
    }
    Some((family?, n?))
}

/// The full in-run gate for a structured kernel bench: compare fresh
/// cells against the history at `history_path` (as it stands, i.e.
/// *before* this run is appended), report every calibrated crossing on
/// stderr, and — when [`TRACE_DIR_ENV`] is set — re-run each regressed
/// cell once under a probe session via `rerun(family, n)` and attach the
/// trace. Returns the regressions so the caller can surface them further.
pub fn check_and_attach(
    bench: &str,
    metas: &[CellMeta],
    history_path: &str,
    mut rerun: impl FnMut(&str, usize),
) -> Vec<Regression> {
    let prior = std::fs::read_to_string(resolve_artifact_path(history_path)).unwrap_or_default();
    let regs = detect_regressions(bench, metas, &prior, DEFAULT_WINDOW);
    let mut attached: Vec<String> = Vec::new();
    for reg in &regs {
        eprintln!(
            "regressed {bench} {} {}: {:.4} ms vs baseline {:.4} ms (+{:.1}% > band {:.1}%)",
            reg.key,
            reg.metric,
            reg.latest,
            reg.baseline,
            reg.delta * 100.0,
            reg.band * 100.0
        );
        if attached.contains(&reg.key) {
            continue;
        }
        attached.push(reg.key.clone());
        if let Some(dir) = trace_dir() {
            if let Some((family, n)) = parse_family_n(&reg.key) {
                attach_probe_rerun(&dir, bench, &reg.key, || rerun(&family, n));
            }
        }
    }
    regs
}

// ---------------------------------------------------------------------------
// History scanning (self-emitted bench_run lines only)
// ---------------------------------------------------------------------------

/// One run's cells as `(key, [(metric, ms)])`.
type RunCells = Vec<(String, Vec<(String, f64)>)>;

/// Per matching run (file order): the run's cells as
/// `(key, [(metric, ms)])`, keyed by the same convention the artifact
/// writer and the `speedscale` readers share — string fields plus `n`
/// identify, `*_ms` fields measure. Lines that fail to parse, belong to
/// another bench, or carry no cells are skipped silently: this reader
/// feeds a best-effort in-run check, and the offline report owns the
/// diagnostics.
fn history_cells(text: &str, bench: &str) -> Vec<RunCells> {
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty())
        .filter_map(|line| {
            let v = MiniJson::parse(line)?;
            if v.member("bench")?.as_str()? != bench {
                return None;
            }
            let cells = v.member("cells")?.as_arr()?;
            Some(cells.iter().map(cell_key_metrics).collect())
        })
        .collect()
}

/// Key/metric extraction mirroring `speedscale::benchdata::cell_from`.
fn cell_key_metrics(cell: &MiniJson) -> (String, Vec<(String, f64)>) {
    use std::fmt::Write as _;
    let mut key = String::new();
    let mut metrics = Vec::new();
    if let MiniJson::Obj(members) = cell {
        for (name, value) in members {
            match value {
                MiniJson::Str(s) => {
                    if !key.is_empty() {
                        key.push(',');
                    }
                    let _ = write!(key, "{name}={s}");
                }
                MiniJson::Num(v) if name == "n" => {
                    if !key.is_empty() {
                        key.push(',');
                    }
                    let _ = write!(key, "n={v}");
                }
                MiniJson::Num(v) if name.ends_with("_ms") => {
                    metrics.push((name.clone(), *v));
                }
                _ => {}
            }
        }
    }
    (key, metrics)
}

/// Just enough JSON for the self-emitted history lines: objects, arrays,
/// strings without exotic escapes, numbers (plus a bare `NaN`, which a
/// broken writer can produce), booleans and null.
#[derive(Debug, Clone, PartialEq)]
enum MiniJson {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<MiniJson>),
    Obj(Vec<(String, MiniJson)>),
}

impl MiniJson {
    fn parse(text: &str) -> Option<MiniJson> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let v = Self::value(bytes, &mut pos)?;
        Self::skip_ws(bytes, &mut pos);
        (pos == bytes.len()).then_some(v)
    }

    fn member(&self, key: &str) -> Option<&MiniJson> {
        match self {
            MiniJson::Obj(m) => m.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            MiniJson::Str(s) => Some(s),
            _ => None,
        }
    }

    fn as_arr(&self) -> Option<&[MiniJson]> {
        match self {
            MiniJson::Arr(a) => Some(a),
            _ => None,
        }
    }

    fn skip_ws(bytes: &[u8], pos: &mut usize) {
        while matches!(bytes.get(*pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            *pos += 1;
        }
    }

    fn value(bytes: &[u8], pos: &mut usize) -> Option<MiniJson> {
        Self::skip_ws(bytes, pos);
        match bytes.get(*pos)? {
            b'{' => {
                *pos += 1;
                let mut members = Vec::new();
                Self::skip_ws(bytes, pos);
                if bytes.get(*pos) == Some(&b'}') {
                    *pos += 1;
                    return Some(MiniJson::Obj(members));
                }
                loop {
                    Self::skip_ws(bytes, pos);
                    let key = Self::string(bytes, pos)?;
                    Self::skip_ws(bytes, pos);
                    (bytes.get(*pos) == Some(&b':')).then_some(())?;
                    *pos += 1;
                    members.push((key, Self::value(bytes, pos)?));
                    Self::skip_ws(bytes, pos);
                    match bytes.get(*pos)? {
                        b',' => *pos += 1,
                        b'}' => {
                            *pos += 1;
                            return Some(MiniJson::Obj(members));
                        }
                        _ => return None,
                    }
                }
            }
            b'[' => {
                *pos += 1;
                let mut items = Vec::new();
                Self::skip_ws(bytes, pos);
                if bytes.get(*pos) == Some(&b']') {
                    *pos += 1;
                    return Some(MiniJson::Arr(items));
                }
                loop {
                    items.push(Self::value(bytes, pos)?);
                    Self::skip_ws(bytes, pos);
                    match bytes.get(*pos)? {
                        b',' => *pos += 1,
                        b']' => {
                            *pos += 1;
                            return Some(MiniJson::Arr(items));
                        }
                        _ => return None,
                    }
                }
            }
            b'"' => Some(MiniJson::Str(Self::string(bytes, pos)?)),
            b't' => Self::literal(bytes, pos, "true", MiniJson::Bool(true)),
            b'f' => Self::literal(bytes, pos, "false", MiniJson::Bool(false)),
            b'n' => Self::literal(bytes, pos, "null", MiniJson::Null),
            b'N' => Self::literal(bytes, pos, "NaN", MiniJson::Num(f64::NAN)),
            c if *c == b'-' || c.is_ascii_digit() => {
                let start = *pos;
                if bytes.get(*pos) == Some(&b'-') {
                    *pos += 1;
                }
                while matches!(bytes.get(*pos), Some(c)
                    if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
                {
                    *pos += 1;
                }
                std::str::from_utf8(&bytes[start..*pos])
                    .ok()?
                    .parse::<f64>()
                    .ok()
                    .map(MiniJson::Num)
            }
            _ => None,
        }
    }

    fn literal(bytes: &[u8], pos: &mut usize, word: &str, v: MiniJson) -> Option<MiniJson> {
        bytes[*pos..].starts_with(word.as_bytes()).then(|| {
            *pos += word.len();
            v
        })
    }

    fn string(bytes: &[u8], pos: &mut usize) -> Option<String> {
        (bytes.get(*pos) == Some(&b'"')).then_some(())?;
        *pos += 1;
        let mut out = String::new();
        loop {
            match bytes.get(*pos)? {
                b'"' => {
                    *pos += 1;
                    return Some(out);
                }
                b'\\' => {
                    *pos += 1;
                    match bytes.get(*pos)? {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        _ => return None,
                    }
                    *pos += 1;
                }
                _ => {
                    let start = *pos;
                    *pos += 1;
                    while *pos < bytes.len() && bytes[*pos] & 0xC0 == 0x80 {
                        *pos += 1;
                    }
                    out.push_str(std::str::from_utf8(&bytes[start..*pos]).ok()?);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::{Artifact, CellBuilder, RunMeta};

    fn run_line(rev: &str, fast_ms: f64) -> String {
        Artifact {
            bench: "yds_kernel".into(),
            alpha: 2.0,
            unit: "ms_median".into(),
            cells: vec![CellBuilder::new("agreeable", 200)
                .metric_ms("fast_ms", fast_ms)
                .int("peels", 40)
                .render()],
        }
        .history_line_with(
            rev,
            &RunMeta {
                commit_ts: Some(1754000000),
                threads: 4,
                host: "aabbccdd".into(),
            },
        )
    }

    fn history(values: &[f64]) -> String {
        values
            .iter()
            .enumerate()
            .map(|(i, v)| run_line(&format!("rev{i}"), *v))
            .collect::<Vec<_>>()
            .join("\n")
            + "\n"
    }

    fn fresh(fast_ms: f64) -> Vec<CellMeta> {
        vec![CellBuilder::new("agreeable", 200)
            .metric_ms("fast_ms", fast_ms)
            .meta()]
    }

    #[test]
    fn calibrated_step_is_caught_and_noise_passes() {
        let hist = history(&[0.100, 0.102, 0.098, 0.101, 0.099]);
        // In-noise fresh value: clean.
        assert!(detect_regressions("yds_kernel", &fresh(0.101), &hist, 8).is_empty());
        // A 20% step crosses the calibrated band.
        let hits = detect_regressions("yds_kernel", &fresh(0.120), &hist, 8);
        assert_eq!(hits.len(), 1);
        let r = &hits[0];
        assert_eq!(r.key, "family=agreeable,n=200");
        assert_eq!(r.metric, "fast_ms");
        assert!((r.baseline - 0.100).abs() < 1e-12);
        assert!(r.delta > 0.15 && r.band < r.delta, "{r:?}");
        // Another bench's history is invisible.
        assert!(detect_regressions("bal_kernel", &fresh(0.120), &hist, 8).is_empty());
    }

    #[test]
    fn sub_floor_cells_and_unknown_cells_never_regress() {
        let hist = history(&[0.010, 0.010, 0.010, 0.010]);
        // 3x slowdown but under the 0.05 ms floor: not a regression.
        assert!(detect_regressions("yds_kernel", &fresh(0.030), &hist, 8).is_empty());
        // A cell with no history at all: nothing to calibrate against.
        let unknown = vec![CellBuilder::new("crossing", 800)
            .metric_ms("fast_ms", 9.9)
            .meta()];
        assert!(detect_regressions("yds_kernel", &unknown, &hist, 8).is_empty());
    }

    #[test]
    fn window_limits_the_calibration_to_trailing_runs() {
        // Ancient slow epoch followed by a fast quiet one: with a window
        // of 3 the baseline is the fast epoch, so a return to the old
        // speed IS a regression.
        let hist = history(&[0.200, 0.210, 0.190, 0.205, 0.100, 0.101, 0.099]);
        let hits = detect_regressions("yds_kernel", &fresh(0.200), &hist, 3);
        assert_eq!(hits.len(), 1);
        assert!((hits[0].baseline - 0.1).abs() < 0.01, "{:?}", hits[0]);
        // The full window is dominated by the slow epoch: baseline sits
        // high and the bimodal dispersion widens the band past the step.
        assert!(detect_regressions("yds_kernel", &fresh(0.200), &hist, 100).is_empty());
    }

    #[test]
    fn malformed_and_foreign_lines_are_skipped() {
        let hist = format!(
            "{}\nnot json at all\n{}\n{{\"type\": \"bench_run\", \"bench\": \"yds_kernel\", \"cells\": [{{\"family\": \"agreeable\", \"n\": 200, \"fast_ms\": NaN}}]}}\n{}",
            run_line("a", 0.100),
            r#"{"type": "other_record", "bench": "yds_kernel"}"#,
            run_line("b", 0.101)
        );
        // Two usable samples (NaN dropped) → too few for a tight band but
        // the scan itself must not choke.
        let hits = detect_regressions("yds_kernel", &fresh(0.2), &hist, 8);
        assert_eq!(hits.len(), 1, "median of 2 samples still baselines");
    }

    #[test]
    fn parse_family_n_round_trips() {
        assert_eq!(
            parse_family_n("family=agreeable,n=200"),
            Some(("agreeable".to_string(), 200))
        );
        assert_eq!(parse_family_n("family=crossing"), None, "missing n");
        assert_eq!(parse_family_n("no_equals_here"), None);
    }

    #[test]
    fn attachment_paths_are_sanitized_and_written() {
        assert_eq!(
            sanitize_key("family=agreeable,n=200"),
            "family_agreeable_n_200"
        );
        let dir = std::env::temp_dir().join(format!("ssp_traj_{}", std::process::id()));
        let dir_s = dir.to_string_lossy().into_owned();
        let path = attachment_path(&dir_s, "yds_kernel", "family=agreeable,n=200");
        assert!(path
            .to_string_lossy()
            .ends_with("yds_kernel__family_agreeable_n_200.jsonl"));
        let trace = ssp_probe::Trace {
            spans: Vec::new(),
            counters: vec![("demo.events".into(), 3)],
            hists: Vec::new(),
            error: None,
        };
        let written = write_attachment(&dir_s, "yds_kernel", "family=agreeable,n=200", &trace)
            .expect("attachment writes");
        let back = ssp_probe::Trace::parse(&std::fs::read_to_string(&written).unwrap()).unwrap();
        assert_eq!(back.counter("demo.events"), 3);
        std::fs::remove_dir_all(&dir).ok();
    }
}
