//! Dependency-free timing harness with a Criterion-compatible surface.
//!
//! The workspace builds in fully offline environments, so the external
//! `criterion` crate is replaced by this minimal shim: the bench targets
//! under `benches/` keep their structure (`Criterion`, `BenchmarkGroup`,
//! `Bencher::iter`, `criterion_group!`/`criterion_main!`) and only swap the
//! `use criterion::...` imports for `ssp_bench` ones.
//!
//! Modes, following Cargo's conventions for `harness = false` targets:
//!
//! * `cargo bench` passes `--bench`: every benchmark is measured (warmup,
//!   then timed samples) and a mean per-iteration time is printed, with
//!   element throughput when a [`Throughput`] was declared.
//! * `cargo test` (and any invocation without `--bench`) runs each
//!   benchmark body exactly once as a smoke test, so the kernels stay
//!   covered by the tier-1 gate without paying measurement time.
//!
//! Passing `--probe` (or setting `SSP_BENCH_PROBE=1`) additionally runs one
//! extra *untimed* invocation of each benchmark inside an `ssp-probe`
//! session and prints the per-iteration solver counters (max-flow runs,
//! bisection steps, …) under the timing line — so a regression in time can
//! immediately be attributed to a regression in work. The traced run stays
//! outside the timed samples, so probing never perturbs the numbers. See
//! `docs/OBSERVABILITY.md`.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// One measured benchmark, retained so the run can be serialized as an
/// artifact after all groups finish (see [`Criterion::emit_artifact`]).
struct BenchRecord {
    label: String,
    per_iter_ms: f64,
    iters: u64,
    trace: Option<ssp_probe::Trace>,
}

/// Measurement configuration plus run-wide counters.
pub struct Criterion {
    measure: bool,
    probe: bool,
    ran: usize,
    records: Vec<BenchRecord>,
}

impl Criterion {
    /// Build from the process arguments (`--bench` selects measurement
    /// mode, anything else the single-pass smoke mode; `--probe` or the
    /// `SSP_BENCH_PROBE` env var adds per-iteration counter reporting).
    ///
    /// Setting [`crate::trajectory::TRACE_DIR_ENV`] also turns probing on:
    /// auto-attaching a trace for a regressed cell requires the trace to
    /// exist by the time [`Criterion::emit_artifact`] compares against
    /// history, because macro-driven benches cannot re-run a closure after
    /// their group returns.
    pub fn from_args() -> Self {
        let measure = std::env::args().any(|a| a == "--bench");
        let probe = std::env::args().any(|a| a == "--probe")
            || std::env::var_os("SSP_BENCH_PROBE").is_some()
            || crate::trajectory::trace_dir().is_some();
        Criterion {
            measure,
            probe,
            ran: 0,
            records: Vec::new(),
        }
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 20,
            throughput: None,
        }
    }

    /// Benchmark a single function outside any group.
    pub fn bench_function(&mut self, id: impl Display, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(self, &id.to_string(), 20, None, f);
        self
    }

    /// Print the end-of-run summary line.
    pub fn final_summary(&self) {
        let mode = if self.measure {
            "measured"
        } else {
            "smoke-tested"
        };
        println!("{} {} benchmark(s)", mode, self.ran);
    }

    /// Serialize the measured run as a bench artifact, honoring the same
    /// environment contract as the structured kernel benches:
    /// `SSP_BENCH_JSON=<path>` writes a snapshot, `SSP_BENCH_HISTORY=<path>`
    /// appends a `bench_run` trajectory line, and
    /// [`crate::trajectory::TRACE_DIR_ENV`] stores the captured probe trace
    /// of every cell that regresses against its own history-calibrated
    /// noise band. No-op in smoke mode or when neither path is set.
    ///
    /// Labels map to cells as `group/123` → `family="group", n=123` when
    /// the last `/`-segment is an integer, `family=<label>, n=0` otherwise;
    /// the mean per-iteration time lands in `time_ms`.
    pub fn emit_artifact(&self, bench: &str, alpha: f64) {
        use crate::artifact::Artifact;
        if !self.measure {
            return;
        }
        let snapshot = std::env::var("SSP_BENCH_JSON")
            .ok()
            .filter(|p| !p.is_empty());
        let history = std::env::var("SSP_BENCH_HISTORY")
            .ok()
            .filter(|p| !p.is_empty());
        if snapshot.is_none() && history.is_none() {
            return;
        }
        let builders: Vec<_> = self
            .records
            .iter()
            .map(|r| {
                let (family, n) = split_label(&r.label);
                crate::artifact::CellBuilder::new(family, n)
                    .metric_ms("time_ms", r.per_iter_ms)
                    .int("iters", r.iters)
            })
            .collect();
        let artifact = Artifact {
            bench: bench.to_string(),
            alpha,
            unit: "ms_mean".to_string(),
            cells: builders.iter().map(|b| b.render()).collect(),
        };
        // Regression check against the history as it stood *before* this
        // run is appended, so a fresh slowdown is compared to its past.
        if let (Some(path), Some(dir)) = (&history, crate::trajectory::trace_dir()) {
            let prior = std::fs::read_to_string(crate::artifact::resolve_artifact_path(path))
                .unwrap_or_default();
            let metas: Vec<_> = builders.iter().map(|b| b.meta()).collect();
            for reg in crate::trajectory::detect_regressions(
                bench,
                &metas,
                &prior,
                crate::trajectory::DEFAULT_WINDOW,
            ) {
                eprintln!(
                    "regressed {bench} {} {}: {:.4} ms vs baseline {:.4} ms (+{:.1}% > band {:.1}%)",
                    reg.key,
                    reg.metric,
                    reg.latest,
                    reg.baseline,
                    reg.delta * 100.0,
                    reg.band * 100.0
                );
                let trace = metas
                    .iter()
                    .position(|m| m.key == reg.key)
                    .and_then(|i| self.records[i].trace.as_ref());
                match trace {
                    Some(trace) => {
                        match crate::trajectory::write_attachment(&dir, bench, &reg.key, trace) {
                            Ok(p) => eprintln!("  trace attached: {}", p.display()),
                            Err(e) => eprintln!("  warning: cannot attach trace: {e}"),
                        }
                    }
                    None => eprintln!("  no probe trace captured for this cell"),
                }
            }
        }
        if let Some(path) = &snapshot {
            match artifact.write_snapshot(path) {
                Ok(()) => println!("wrote snapshot {path}"),
                Err(e) => eprintln!("warning: cannot write snapshot {path}: {e}"),
            }
        }
        if let Some(path) = &history {
            match artifact.append_history(path) {
                Ok(()) => println!("appended history {path}"),
                Err(e) => eprintln!("warning: cannot append history {path}: {e}"),
            }
        }
    }
}

/// `group/123` → `("group", 123)`; labels without a trailing integer
/// segment keep the whole label as the family with `n = 0`.
fn split_label(label: &str) -> (&str, usize) {
    match label.rsplit_once('/') {
        Some((family, tail)) => match tail.parse::<usize>() {
            Ok(n) => (family, n),
            Err(_) => (label, 0),
        },
        None => (label, 0),
    }
}

/// A group of benchmarks sharing a name prefix and measurement settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples taken per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declare the work per iteration so the report can show a rate.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmark a closure under `group_name/id`.
    pub fn bench_function(&mut self, id: impl Display, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_one(self.criterion, &label, self.sample_size, self.throughput, f);
        self
    }

    /// Benchmark a closure that borrows a prepared input.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_one(
            self.criterion,
            &label,
            self.sample_size,
            self.throughput,
            |b| f(b, input),
        );
        self
    }

    /// Close the group (kept for Criterion source compatibility; all
    /// reporting happens per benchmark).
    pub fn finish(self) {}
}

/// Identifier of one benchmark within a group: an optional function name
/// plus a parameter rendered with `Display`.
pub struct BenchmarkId {
    name: Option<String>,
    param: String,
}

impl BenchmarkId {
    /// A `name/parameter` id.
    pub fn new(name: impl Into<String>, param: impl Display) -> Self {
        BenchmarkId {
            name: Some(name.into()),
            param: param.to_string(),
        }
    }

    /// An id that is just the parameter (the group supplies the name).
    pub fn from_parameter(param: impl Display) -> Self {
        BenchmarkId {
            name: None,
            param: param.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.name {
            Some(name) => write!(f, "{}/{}", name, self.param),
            None => write!(f, "{}", self.param),
        }
    }
}

/// Work performed per iteration, for rate reporting.
#[derive(Clone, Copy)]
pub enum Throughput {
    /// Iterations process this many logical elements (e.g. jobs).
    Elements(u64),
}

/// Passed to every benchmark body; [`Bencher::iter`] does the timing.
pub struct Bencher {
    measure: bool,
    probe: bool,
    sample_size: usize,
    /// Total time spent inside `iter` closures.
    elapsed: Duration,
    /// Number of closure invocations that `elapsed` covers.
    iters: u64,
    /// Trace of one untimed invocation, captured in probe mode.
    trace: Option<ssp_probe::Trace>,
}

/// One untimed, traced invocation; `None` if the probe is busy elsewhere.
fn trace_once<O>(routine: &mut impl FnMut() -> O) -> Option<ssp_probe::Trace> {
    let session = ssp_probe::Session::begin()?;
    std::hint::black_box(routine());
    Some(session.end())
}

impl Bencher {
    /// Run the routine, timing it in measurement mode or executing it once
    /// in smoke mode.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        if !self.measure {
            if self.probe {
                self.trace = trace_once(&mut routine);
            }
            if self.trace.is_none() {
                std::hint::black_box(routine());
            }
            self.iters += 1;
            return;
        }
        if self.probe {
            // Trace before the timed samples so counter registration and
            // buffer growth never land inside a measurement.
            self.trace = trace_once(&mut routine);
        }
        // Warmup + calibration: aim each timed sample at ~2ms of work.
        let start = Instant::now();
        std::hint::black_box(routine());
        let est = start.elapsed().max(Duration::from_nanos(50));
        let per_sample =
            (Duration::from_millis(2).as_nanos() / est.as_nanos()).clamp(1, 100_000) as u64;
        let mut budget = Duration::from_millis(200);
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..per_sample {
                std::hint::black_box(routine());
            }
            let dt = t0.elapsed();
            self.elapsed += dt;
            self.iters += per_sample;
            budget = budget.saturating_sub(dt);
            if budget.is_zero() {
                break;
            }
        }
    }
}

fn run_one(
    criterion: &mut Criterion,
    label: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: impl FnMut(&mut Bencher),
) {
    let mut b = Bencher {
        measure: criterion.measure,
        probe: criterion.probe,
        sample_size,
        elapsed: Duration::ZERO,
        iters: 0,
        trace: None,
    };
    f(&mut b);
    criterion.ran += 1;
    if !criterion.measure {
        println!("smoke {label}: ok ({} call(s))", b.iters.max(1));
        print_trace_counters(label, &b.trace);
        return;
    }
    if b.iters == 0 {
        println!("bench {label}: no iterations recorded");
        return;
    }
    let per_iter = b.elapsed.as_secs_f64() / b.iters as f64;
    let mut line = format!(
        "bench {label}: {} per iter ({} iters)",
        fmt_time(per_iter),
        b.iters
    );
    if let Some(Throughput::Elements(e)) = throughput {
        if per_iter > 0.0 {
            let rate = e as f64 / per_iter;
            line.push_str(&format!(", {} elem/s", fmt_rate(rate)));
        }
    }
    println!("{line}");
    print_trace_counters(label, &b.trace);
    criterion.records.push(BenchRecord {
        label: label.to_string(),
        per_iter_ms: per_iter * 1e3,
        iters: b.iters,
        trace: b.trace,
    });
}

/// In probe mode, report the solver counters of one traced iteration under
/// the timing line (deltas per iteration, since the session spans exactly
/// one invocation).
fn print_trace_counters(label: &str, trace: &Option<ssp_probe::Trace>) {
    let Some(trace) = trace else { return };
    for (name, value) in &trace.counters {
        println!("  probe {label}: {name} = {value}/iter");
    }
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} us", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

fn fmt_rate(rate: f64) -> String {
    if rate >= 1e9 {
        format!("{:.2}G", rate / 1e9)
    } else if rate >= 1e6 {
        format!("{:.2}M", rate / 1e6)
    } else if rate >= 1e3 {
        format!("{:.2}K", rate / 1e3)
    } else {
        format!("{rate:.1}")
    }
}

/// Bundle benchmark functions into a named group runner, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::harness::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Generate `main` running the listed groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::harness::Criterion::from_args();
            $( $group(&mut c); )+
            c.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mode_runs_body_once() {
        let mut c = Criterion {
            measure: false,
            probe: false,
            ran: 0,
            records: Vec::new(),
        };
        let mut calls = 0u32;
        c.bench_function("probe", |b| b.iter(|| calls += 1));
        assert_eq!(calls, 1);
        assert_eq!(c.ran, 1);
    }

    #[test]
    fn measure_mode_records_iterations() {
        let mut c = Criterion {
            measure: true,
            probe: false,
            ran: 0,
            records: Vec::new(),
        };
        let mut g = c.benchmark_group("grp");
        g.sample_size(3).throughput(Throughput::Elements(8));
        let mut calls = 0u64;
        g.bench_with_input(BenchmarkId::from_parameter(8), &2u64, |b, &x| {
            b.iter(|| calls += x)
        });
        g.finish();
        assert!(
            calls >= 3,
            "expected multiple timed iterations, got {calls}"
        );
    }

    #[test]
    fn probe_mode_traces_one_untimed_iteration() {
        // Process-global probe: this is the only session user in this test
        // binary, so no lock is needed.
        let mut calls = 0u32;
        let trace = trace_once(&mut || {
            ssp_probe::counter!("bench.harness.test_events", 3u64);
            calls += 1;
        })
        .expect("probe idle in the bench test binary");
        assert_eq!(calls, 1, "trace_once runs the routine exactly once");
        assert_eq!(trace.counter("bench.harness.test_events"), 3);

        // Smoke mode with probing on: the traced call doubles as the smoke
        // call, so the body still runs exactly once.
        let mut c = Criterion {
            measure: false,
            probe: true,
            ran: 0,
            records: Vec::new(),
        };
        let mut smoke_calls = 0u32;
        c.bench_function("probe_smoke", |b| b.iter(|| smoke_calls += 1));
        assert_eq!(smoke_calls, 1);
    }

    #[test]
    fn benchmark_ids_render_like_criterion() {
        assert_eq!(BenchmarkId::new("exact", 11).to_string(), "exact/11");
        assert_eq!(BenchmarkId::from_parameter(200).to_string(), "200");
        assert_eq!(fmt_time(0.5), "500.000 ms");
        assert_eq!(fmt_rate(2_000_000.0), "2.00M");
    }
}
