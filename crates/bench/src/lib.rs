//! # ssp-bench
//!
//! Benchmarks for the reproduction, built on the in-repo Criterion-style
//! timing shim in [`harness`] (the workspace carries no external
//! dependencies so it builds offline). Each bench target regenerates the
//! computational kernel behind one `EXPERIMENTS.md` artifact:
//!
//! | bench target | artifact | kernel |
//! |--------------|----------|--------|
//! | `tables` / `exp1_rr_optimal` | Table 1 | RR assignment + per-machine YDS and the exact solver |
//! | `tables` / `exp2_hardness` | Table 2 | exact branch-and-bound on the gadgets |
//! | `tables` / `exp3_unit_approx` | Table 3 / Fig 1 | RelaxRound (BAL relaxation + rounding) |
//! | `tables` / `exp4_agreeable_approx` | Table 4 / Fig 2 | ClassifiedRR |
//! | `tables` / `exp5_migration_gap` | Table 5 | exact vs BAL on small instances |
//! | `scaling` / `bal_n*`, `rr_yds_n*` | Figure 3 | BAL and RR-YDS as `n` doubles |
//! | `tables` / `exp7_mbal` | Figure 4 | MBAL budget probe |
//! | `tables` / `exp8_online` | Table 6 | AVR-m and OA-m |
//! | `tables` / `exp9_certify` | Table 7 | BAL + KKT certificate |
//! | `micro` / * | — | max-flow, YDS, interval decomposition primitives |
//!
//! This library crate only hosts shared fixtures; the targets live under
//! `benches/`.
//!
//! Passing `--probe` after `--bench` (or setting `SSP_BENCH_PROBE=1`)
//! attaches `ssp-probe` counter deltas to each benchmark: one extra
//! untimed iteration runs inside a probe session and its solver counters
//! (max-flow runs, pushes/relabels, bisection steps, …) print under the
//! timing line, so a slower number can be split into "more work" vs
//! "slower work" without re-running anything. See `docs/OBSERVABILITY.md`
//! at the repository root.

#![warn(missing_docs)]

pub mod artifact;
pub mod harness;
pub mod trajectory;

use ssp_model::Instance;
use ssp_workloads::{families, subseed};

/// Deterministic fixture instances so Criterion compares like with like
/// across runs.
pub fn fixture(family: &str, n: usize, m: usize, alpha: f64) -> Instance {
    let spec = match family {
        "unit_agreeable" => families::unit_agreeable(n, m, alpha),
        "unit_arbitrary" => families::unit_arbitrary(n, m, alpha),
        "weighted_agreeable" => families::weighted_agreeable(n, m, alpha),
        "bursty" => families::bursty(n, m, alpha),
        _ => families::general(n, m, alpha),
    };
    spec.gen(subseed(0xBE9C, n as u64 * 31 + m as u64))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_are_deterministic() {
        assert_eq!(
            fixture("general", 20, 2, 2.0),
            fixture("general", 20, 2, 2.0)
        );
        assert_eq!(fixture("bursty", 10, 4, 2.0).len(), 10);
    }
}
