//! The compaction invariant, pinned bit-for-bit.
//!
//! Sliding-window compaction must be *unobservable* from the schedule's
//! point of view: the engine with an aggressively small `window_cap`
//! (forcing frequent chunk flushes) and the engine with an effectively
//! unbounded one must dispatch every job to the same machine, accrue
//! bit-identical per-machine energies, and hold identical live windows
//! after every arrival. Only the *lower bound* may differ (smaller chunks
//! ⇒ a looser but still valid bound), which is why the runs below disable
//! the oracle — the invariant under test is about the schedule, and the
//! lower-bound difference is checked separately for direction.

use ssp_model::Job;
use ssp_online::{EngineOptions, LbMode, Policy, SchedulerKind, StreamEngine};
use ssp_workloads::{stream_family, STREAM_FAMILIES};

/// Run two engines in lockstep, one compacting every `cap` jobs and one
/// effectively never, and assert bit-identical observable state after
/// every arrival.
fn assert_lockstep(name: &str, policy: Policy, scheduler: SchedulerKind, n: usize, cap: usize) {
    let spec = stream_family(name, 3, 2.3).expect("known family");
    let opts = EngineOptions::new(3, 2.3)
        .policy(policy)
        .scheduler(scheduler)
        .lower_bound(LbMode::Off);
    let mut compacted = StreamEngine::new(opts.window_cap(cap)).unwrap();
    let mut replay = StreamEngine::new(opts.window_cap(usize::MAX >> 1)).unwrap();

    for (k, job) in spec.jobs(2024).take(n).enumerate() {
        let a = compacted.push(job).unwrap();
        let b = replay.push(job).unwrap();
        assert_eq!(a, b, "{name}/{policy}: dispatch diverged at arrival {k}");
        for p in 0..3 {
            let wa: Vec<Job> = compacted.live_window(p).to_vec();
            let wb: Vec<Job> = replay.live_window(p).to_vec();
            assert_eq!(
                wa.len(),
                wb.len(),
                "{name}/{policy}: live window size, machine {p}"
            );
            for (x, y) in wa.iter().zip(&wb) {
                assert_eq!(x.id, y.id);
                assert_eq!(x.work.to_bits(), y.work.to_bits());
                assert_eq!(x.release.to_bits(), y.release.to_bits());
                assert_eq!(x.deadline.to_bits(), y.deadline.to_bits());
            }
        }
    }

    let ra = compacted.finish().unwrap();
    let rb = replay.finish().unwrap();
    assert_eq!(
        ra.energy.to_bits(),
        rb.energy.to_bits(),
        "{name}/{policy}: total energy bits diverged"
    );
    for (p, (ea, eb)) in ra.machine_energy.iter().zip(&rb.machine_energy).enumerate() {
        assert_eq!(
            ea.to_bits(),
            eb.to_bits(),
            "{name}/{policy}: machine {p} energy bits diverged"
        );
    }
    assert!(
        ra.compactions + ra.forced_compactions >= rb.compactions,
        "{name}: the capped engine cannot compact less often"
    );
}

#[test]
fn compacted_stream_matches_uncompacted_replay_bitwise() {
    for name in STREAM_FAMILIES {
        for policy in Policy::ALL {
            assert_lockstep(name, policy, SchedulerKind::Oa, 400, 48);
        }
        assert_lockstep(name, Policy::RoundRobin, SchedulerKind::Avr, 400, 48);
    }
}

#[test]
fn tiny_caps_are_as_invisible_as_large_ones() {
    // window_cap 1 forces a flush attempt before (almost) every arrival —
    // the most hostile compaction schedule possible.
    assert_lockstep("bursty", Policy::DensityAware, SchedulerKind::Oa, 250, 1);
    assert_lockstep("tight", Policy::LoadAware, SchedulerKind::Oa, 250, 1);
}

#[test]
fn chunked_lower_bound_only_loosens_under_forced_splits() {
    // With the oracle ON, a smaller window_cap may only lower (never raise)
    // the certified bound, and both runs bound the same schedule energy.
    let spec = stream_family("heavy", 2, 2.0).unwrap();
    let run = |cap: usize| {
        let mut e = StreamEngine::new(
            EngineOptions::new(2, 2.0)
                .window_cap(cap)
                .lower_bound(LbMode::Chunked { bal_cap: 64 }),
        )
        .unwrap();
        for job in spec.jobs(7).take(600) {
            e.push(job).unwrap();
        }
        e.finish().unwrap()
    };
    let fine = run(32);
    let coarse = run(4096);
    assert_eq!(fine.energy.to_bits(), coarse.energy.to_bits());
    let (lb_fine, lb_coarse) = (fine.lower_bound.unwrap(), coarse.lower_bound.unwrap());
    assert!(lb_fine > 0.0 && lb_coarse > 0.0);
    assert!(
        lb_fine <= lb_coarse * (1.0 + 1e-9),
        "finer partition must not beat the coarser bound: {lb_fine} vs {lb_coarse}"
    );
    assert!(fine.energy >= lb_coarse * (1.0 - 1e-9));
}
