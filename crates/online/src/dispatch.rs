//! Dispatch policies: the irrevocable job→machine decision at release time.
//!
//! The paper's non-migratory model is exactly a cluster without migration:
//! once a job is placed, it runs (preemptively, speed-scaled) on that
//! machine alone. The engine supports three online policies, all of which
//! read only the machines' **live windows** — never the stream's history —
//! so a dispatch decision costs the same on the 10^6th arrival as on the
//! first:
//!
//! * [`Policy::RoundRobin`] — machine `k mod m` for the `k`-th arrival.
//!   Jobs arrive in release order, so on the R1 regime (unit works,
//!   agreeable deadlines) this is the paper's provably optimal sorted
//!   round-robin, executed online.
//! * [`Policy::LoadAware`] — least remaining committed work: the machine
//!   with the smallest backlog (`Σ rem_i` for OA, `Σ den_i·(d_i−t)` for
//!   AVR) wins; ties go to the lowest index.
//! * [`Policy::DensityAware`] — cheapest *marginal YDS energy*: the job is
//!   priced onto every machine's live window through
//!   [`ssp_core::LiveEval`] (memoized kernel calls — the base term of each
//!   window is shared across arrivals) and the machine whose window absorbs
//!   it cheapest wins. When the total live window exceeds the engine's
//!   pricing cap the policy falls back to overlapped-density counting
//!   (`Σ den_j` over live jobs whose spans intersect the new job's window;
//!   counter `online.density_fallback`).

/// An online dispatch policy. See the module docs for semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// Arrival-order round-robin (the paper's R1 rule, online).
    RoundRobin,
    /// Least remaining committed work.
    LoadAware,
    /// Cheapest marginal YDS energy of the live window (capped fallback:
    /// overlapped density).
    DensityAware,
}

impl Policy {
    /// Parse a CLI name: `rr`, `load`, or `density`.
    pub fn parse(name: &str) -> Option<Policy> {
        match name {
            "rr" => Some(Policy::RoundRobin),
            "load" => Some(Policy::LoadAware),
            "density" => Some(Policy::DensityAware),
            _ => None,
        }
    }

    /// The CLI name of the policy.
    pub fn name(&self) -> &'static str {
        match self {
            Policy::RoundRobin => "rr",
            Policy::LoadAware => "load",
            Policy::DensityAware => "density",
        }
    }

    /// All policies, in presentation order.
    pub const ALL: [Policy; 3] = [Policy::RoundRobin, Policy::LoadAware, Policy::DensityAware];
}

impl std::fmt::Display for Policy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for p in Policy::ALL {
            assert_eq!(Policy::parse(p.name()), Some(p));
        }
        assert_eq!(Policy::parse("nope"), None);
    }
}
