//! # ssp-online
//!
//! The online arrival stack: jobs arrive over time (release-ordered), a
//! dispatch [`Policy`] irrevocably assigns each to one of `m` machines,
//! and every machine runs a single-processor online policy — Optimal
//! Available or Average Rate — *incrementally*, replanning only at its
//! own arrivals and completions instead of at every event in the stream.
//!
//! This is the paper's non-migratory setting made operational: the
//! classified round-robin reductions of Albers–Müller–Schmelzer assign
//! jobs to machines and then schedule each machine independently; here
//! the assignment itself happens online, one arrival at a time, and the
//! per-machine schedules are the classic `α^α`-competitive OA and
//! `(2α)^α/2`-style AVR policies.
//!
//! The three layers:
//!
//! * [`machine`] — incremental per-machine simulators ([`OaMachine`],
//!   [`AvrMachine`]) with exact event-driven energy accrual, bit-matching
//!   the offline references in `ssp-single`.
//! * [`dispatch`] — the job→machine policies ([`Policy`]).
//! * [`engine`] — the [`StreamEngine`]: validation, advancement, window
//!   pruning, sliding-window compaction, and a *chunked certified lower
//!   bound* (BAL per closed window) that turns a finished run into an
//!   empirical competitive ratio against the migratory optimum.
//!
//! Memory stays bounded on unbounded streams: live state is the union of
//! the machines' unexpired windows plus one chunk buffer capped at
//! `window_cap`. A 10^6-job stream runs in a few tens of MB regardless of
//! length (EXP-22 asserts this via the `peak_live`/`peak_chunk` report
//! fields).
//!
//! Entry points: build [`EngineOptions`], construct a [`StreamEngine`],
//! [`StreamEngine::push`] each arrival, and [`StreamEngine::finish`] for
//! the [`StreamReport`]. The `ssp stream` CLI subcommand and the EXP-22
//! runner are thin wrappers over exactly this sequence. The full model
//! and methodology are documented in docs/ONLINE.md.

#![warn(missing_docs)]

pub mod dispatch;
pub mod engine;
pub mod machine;

pub use dispatch::Policy;
pub use engine::{EngineOptions, LbMode, SchedulerKind, StreamEngine, StreamReport};
pub use machine::{AvrMachine, OaMachine};
