//! The streaming arrival engine: dispatch, simulate, compact, bound.
//!
//! [`StreamEngine`] consumes a release-ordered job stream one arrival at a
//! time. Each [`StreamEngine::push`]:
//!
//! 1. validates the arrival (same per-job invariants as the trace reader);
//! 2. advances every machine's incremental simulator to the release
//!    instant and prunes expired jobs from the live windows;
//! 3. runs the dispatch [`Policy`] over the live state and hands the job
//!    to the chosen machine irrevocably;
//! 4. feeds the sliding-window compactor.
//!
//! **Compaction invariant.** All per-machine simulators are event-local
//! (see [`crate::machine`]): their future behavior depends only on the
//! live window, so expired state can be folded away without changing a
//! single bit of the remaining computation. The engine exploits this in
//! one place — the lower-bound chunk buffer — and the invariant is what
//! the property test `compaction_prop.rs` pins down: a compacted run and
//! an uncompacted replay produce bit-identical dispatch sequences, live
//! windows, and energies.
//!
//! **Chunked certified lower bound.** For any partition of the stream's
//! jobs into chunks, `Σ_chunks OPT_migratory(chunk) ≤ OPT_migratory(all)`:
//! restricting a feasible schedule of the whole stream to one chunk's jobs
//! yields a feasible schedule of that chunk, so each chunk's optimum is at
//! most its restriction's energy, and the restrictions' energies sum to
//! the whole schedule's. Every energy the engine reports is a feasible
//! m-machine schedule of all jobs, hence `energy ≥ OPT ≥ Σ chunk bounds`
//! and the reported ratio is a genuine (empirical) competitive ratio
//! against the certified migratory optimum of
//! [Angel–Bampis–Kacem–Letsios]. Chunks are cut at *natural split points*
//! (the release has passed every seen deadline — the live window is
//! provably empty, so the decomposition is exact and the per-chunk BAL
//! bound is the chunk's true optimum) and, when a window refuses to close,
//! force-cut at `window_cap` jobs (still a valid partition bound, merely
//! looser). Chunks larger than `bal_cap` are bounded by the pooled
//! single-machine relaxation `YDS₁(chunk)/m^{α−1}` instead of BAL
//! (`OPT_m ≥ ∫(Σs_i)^α/m^{α−1} ≥ YDS₁/m^{α−1}` by the power-mean
//! inequality), keeping the oracle's cost bounded per job.
//!
//! Probe surface: counters `online.arrivals`, `online.events`,
//! `online.replans`, `online.compactions`, `online.compactions_forced`,
//! `online.density_fallback`; histograms `online.window_jobs` (live jobs
//! at each arrival) and `online.recompute_frac` (percent, recorded once at
//! [`StreamEngine::finish`]); span `online.compact` around each chunk
//! flush. See docs/OBSERVABILITY.md.

use crate::dispatch::Policy;
use crate::machine::{AvrMachine, OaMachine, Sched};
use ssp_core::LiveEval;
use ssp_migratory::bal::bal;
use ssp_model::arrival::validate_arrival;
use ssp_model::numeric::pow_alpha;
use ssp_model::{Instance, Job, ModelError};
use ssp_single::yds::yds;

/// Which per-machine online scheduler the engine runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulerKind {
    /// Optimal Available (`α^α`-competitive per machine).
    Oa,
    /// Average Rate (`α^α·2^{α−1}`-competitive per machine).
    Avr,
}

impl SchedulerKind {
    /// Parse a CLI name: `oa` or `avr`.
    pub fn parse(name: &str) -> Option<SchedulerKind> {
        match name {
            "oa" => Some(SchedulerKind::Oa),
            "avr" => Some(SchedulerKind::Avr),
            _ => None,
        }
    }

    /// The CLI name.
    pub fn name(&self) -> &'static str {
        match self {
            SchedulerKind::Oa => "oa",
            SchedulerKind::Avr => "avr",
        }
    }
}

/// Lower-bound oracle mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LbMode {
    /// No lower bound: the chunk buffer stays empty (compaction split
    /// points are still detected and counted).
    Off,
    /// Chunked certified bound: BAL per chunk up to `bal_cap` jobs, the
    /// pooled `YDS₁/m^{α−1}` relaxation beyond.
    Chunked {
        /// Largest chunk solved exactly with BAL.
        bal_cap: usize,
    },
}

/// Engine configuration. Build with [`EngineOptions::new`] and the fluent
/// setters.
#[derive(Debug, Clone, Copy)]
pub struct EngineOptions {
    /// Machine count.
    pub machines: usize,
    /// Power exponent.
    pub alpha: f64,
    /// Dispatch policy.
    pub policy: Policy,
    /// Per-machine scheduler.
    pub scheduler: SchedulerKind,
    /// Forced-compaction threshold: the lower-bound chunk buffer is
    /// flushed when it reaches this many jobs even without a natural
    /// split point, bounding live memory.
    pub window_cap: usize,
    /// Total-live-jobs cap above which the density-aware policy stops
    /// pricing marginal YDS energies and falls back to overlapped-density
    /// counting.
    pub price_cap: usize,
    /// Lower-bound oracle mode.
    pub lower_bound: LbMode,
}

impl EngineOptions {
    /// Defaults: OA scheduler, round-robin dispatch, `window_cap` 4096,
    /// `price_cap` 96, chunked lower bound with `bal_cap` 192.
    pub fn new(machines: usize, alpha: f64) -> Self {
        EngineOptions {
            machines,
            alpha,
            policy: Policy::RoundRobin,
            scheduler: SchedulerKind::Oa,
            window_cap: 4096,
            price_cap: 96,
            lower_bound: LbMode::Chunked { bal_cap: 192 },
        }
    }

    /// Set the dispatch policy.
    pub fn policy(mut self, p: Policy) -> Self {
        self.policy = p;
        self
    }

    /// Set the per-machine scheduler.
    pub fn scheduler(mut self, s: SchedulerKind) -> Self {
        self.scheduler = s;
        self
    }

    /// Set the forced-compaction threshold.
    pub fn window_cap(mut self, cap: usize) -> Self {
        assert!(cap > 0, "window cap must be positive");
        self.window_cap = cap;
        self
    }

    /// Set the density-pricing cap.
    pub fn price_cap(mut self, cap: usize) -> Self {
        self.price_cap = cap;
        self
    }

    /// Set the lower-bound mode.
    pub fn lower_bound(mut self, lb: LbMode) -> Self {
        self.lower_bound = lb;
        self
    }
}

/// What a finished stream run reports. All counts are engine-local (the
/// probe counters aggregate across engines in a session).
#[derive(Debug, Clone)]
pub struct StreamReport {
    /// Jobs pushed.
    pub arrivals: u64,
    /// Machine count.
    pub machines: usize,
    /// Power exponent.
    pub alpha: f64,
    /// Dispatch policy the run used.
    pub policy: Policy,
    /// Per-machine scheduler the run used.
    pub scheduler: SchedulerKind,
    /// Total energy of the dispatched schedule (exact profile integral).
    pub energy: f64,
    /// Per-machine energies (`Σ = energy` up to summation order).
    pub machine_energy: Vec<f64>,
    /// Chunked certified migratory lower bound, if the oracle was on.
    pub lower_bound: Option<f64>,
    /// Peak live jobs across all machines, sampled at arrivals.
    pub peak_live: usize,
    /// Peak lower-bound chunk buffer length (bounded by `window_cap`).
    pub peak_chunk: usize,
    /// Natural compaction splits (live window provably empty).
    pub compactions: u64,
    /// Forced compactions (chunk buffer hit `window_cap`).
    pub forced_compactions: u64,
    /// OA prefix-scan replans across all machines.
    pub replans: u64,
    /// Machine-events processed (advance visits + arrivals).
    pub machine_events: u64,
    /// Density-aware decisions that fell back to overlap counting.
    pub density_fallbacks: u64,
}

impl StreamReport {
    /// Empirical competitive ratio `energy / lower_bound`, when the bound
    /// exists and is positive.
    pub fn ratio(&self) -> Option<f64> {
        match self.lower_bound {
            Some(lb) if lb > 0.0 => Some(self.energy / lb),
            _ => None,
        }
    }

    /// Fraction of machine-events that required a full prefix replan — the
    /// naive engine replans at every one of them, the incremental engine
    /// only at a machine's own arrivals and completions.
    pub fn recompute_frac(&self) -> f64 {
        if self.machine_events == 0 {
            0.0
        } else {
            self.replans as f64 / self.machine_events as f64
        }
    }
}

/// Chunk accumulator for the certified lower bound (see module docs).
struct ChunkLb {
    jobs: Vec<Job>,
    machines: usize,
    alpha: f64,
    bal_cap: usize,
    sum: f64,
}

impl ChunkLb {
    fn flush(&mut self) -> Result<(), ModelError> {
        if self.jobs.is_empty() {
            return Ok(());
        }
        let _span = ssp_probe::span("online.compact");
        let lb = if self.jobs.len() <= self.bal_cap {
            let chunk = Instance::new(std::mem::take(&mut self.jobs), self.machines, self.alpha)?;
            self.jobs = Vec::with_capacity(chunk.len());
            bal(&chunk).energy
        } else {
            let pooled = yds(&self.jobs, self.alpha).energy;
            self.jobs.clear();
            pooled / pow_alpha(self.machines as f64, self.alpha - 1.0)
        };
        self.sum += lb;
        Ok(())
    }
}

/// The streaming arrival engine. See the module docs for the full story.
pub struct StreamEngine {
    opts: EngineOptions,
    scheds: Vec<Sched>,
    /// Unexpired original jobs per machine (the dispatch live windows).
    windows: Vec<Vec<Job>>,
    live_eval: LiveEval,
    lb: Option<ChunkLb>,
    /// Jobs buffered since the last flush, whether or not the oracle
    /// stores them (drives forced compaction).
    chunk_len: usize,
    rr_next: usize,
    last_release: f64,
    /// Max deadline over every job ever pushed — a release at or past it
    /// proves the live window empty (natural split point).
    max_deadline: f64,
    arrivals: u64,
    peak_live: usize,
    peak_chunk: usize,
    compactions: u64,
    forced_compactions: u64,
    machine_events: u64,
    density_fallbacks: u64,
}

impl StreamEngine {
    /// Build an engine. Fails like [`Instance::new`] on a zero machine
    /// count or `alpha ≤ 1`.
    pub fn new(opts: EngineOptions) -> Result<Self, ModelError> {
        if opts.machines == 0 {
            return Err(ModelError::NoMachines);
        }
        if !opts.alpha.is_finite() || opts.alpha <= 1.0 {
            return Err(ModelError::BadAlpha { alpha: opts.alpha });
        }
        let scheds = (0..opts.machines)
            .map(|_| match opts.scheduler {
                SchedulerKind::Oa => Sched::Oa(OaMachine::new(opts.alpha)),
                SchedulerKind::Avr => Sched::Avr(AvrMachine::new(opts.alpha)),
            })
            .collect();
        let lb = match opts.lower_bound {
            LbMode::Off => None,
            LbMode::Chunked { bal_cap } => Some(ChunkLb {
                jobs: Vec::new(),
                machines: opts.machines,
                alpha: opts.alpha,
                bal_cap,
                sum: 0.0,
            }),
        };
        Ok(StreamEngine {
            windows: vec![Vec::new(); opts.machines],
            scheds,
            live_eval: LiveEval::new(opts.alpha),
            lb,
            chunk_len: 0,
            rr_next: 0,
            last_release: f64::NEG_INFINITY,
            max_deadline: f64::NEG_INFINITY,
            arrivals: 0,
            peak_live: 0,
            peak_chunk: 0,
            compactions: 0,
            forced_compactions: 0,
            machine_events: 0,
            density_fallbacks: 0,
            opts,
        })
    }

    /// Absorb one arrival and return the machine it was dispatched to.
    /// Jobs must satisfy the trace contract (valid fields, non-decreasing
    /// releases); the engine is total — a bad job is a typed error, not a
    /// panic, and leaves the engine state unchanged.
    pub fn push(&mut self, job: Job) -> Result<usize, ModelError> {
        validate_arrival(&job, self.last_release)?;
        ssp_probe::counter!("online.arrivals");
        self.arrivals += 1;
        self.last_release = job.release;

        // Compaction first: a natural split needs no look at the live
        // state (the release outruns every seen deadline), a forced one
        // bounds the chunk buffer.
        if self.chunk_len > 0 && job.release >= self.max_deadline {
            self.compact()?;
            ssp_probe::counter!("online.compactions");
            self.compactions += 1;
        } else if self.chunk_len >= self.opts.window_cap {
            self.compact()?;
            ssp_probe::counter!("online.compactions_forced");
            self.forced_compactions += 1;
        }

        // Advance every machine to the release instant and prune the
        // dispatch windows of expired jobs.
        for p in 0..self.opts.machines {
            self.scheds[p].advance(job.release);
            self.windows[p].retain(|j| j.deadline > job.release);
            self.machine_events += 1;
            ssp_probe::counter!("online.events");
        }

        let p = self.pick(&job);
        self.scheds[p].arrive(&job);
        self.machine_events += 1;
        ssp_probe::counter!("online.events");
        self.windows[p].push(job);
        if let Some(lb) = &mut self.lb {
            lb.jobs.push(job);
        }
        self.chunk_len += 1;
        self.peak_chunk = self.peak_chunk.max(self.chunk_len);
        self.max_deadline = self.max_deadline.max(job.deadline);

        let live: usize = self.windows.iter().map(Vec::len).sum();
        self.peak_live = self.peak_live.max(live);
        ssp_probe::histogram!("online.window_jobs", live as u64);
        Ok(p)
    }

    fn compact(&mut self) -> Result<(), ModelError> {
        if let Some(lb) = &mut self.lb {
            lb.flush()?;
        }
        self.chunk_len = 0;
        Ok(())
    }

    /// The dispatch decision. Reads only live state; deterministic.
    fn pick(&mut self, job: &Job) -> usize {
        let m = self.opts.machines;
        match self.opts.policy {
            Policy::RoundRobin => {
                let p = self.rr_next;
                self.rr_next = (self.rr_next + 1) % m;
                p
            }
            Policy::LoadAware => {
                let mut best = (0usize, f64::INFINITY);
                for (p, s) in self.scheds.iter().enumerate() {
                    let load = s.load();
                    if load < best.1 {
                        best = (p, load);
                    }
                }
                best.0
            }
            Policy::DensityAware => {
                let live: usize = self.windows.iter().map(Vec::len).sum();
                let mut best = (0usize, f64::INFINITY);
                if live <= self.opts.price_cap {
                    for (p, w) in self.windows.iter().enumerate() {
                        let marginal = self.live_eval.marginal(w, job);
                        if marginal < best.1 {
                            best = (p, marginal);
                        }
                    }
                } else {
                    ssp_probe::counter!("online.density_fallback");
                    self.density_fallbacks += 1;
                    for (p, w) in self.windows.iter().enumerate() {
                        let overlap: f64 = w
                            .iter()
                            .filter(|j| j.release < job.deadline && j.deadline > job.release)
                            .map(Job::density)
                            .sum();
                        if overlap < best.1 {
                            best = (p, overlap);
                        }
                    }
                }
                best.0
            }
        }
    }

    /// Total live (unexpired) jobs across all machines right now.
    pub fn live_jobs(&self) -> usize {
        self.windows.iter().map(Vec::len).sum()
    }

    /// Machine `p`'s live window (unexpired dispatched jobs, arrival
    /// order) — what the density-aware policy prices. Exposed so the
    /// compaction property test can compare live state bit for bit.
    pub fn live_window(&self, p: usize) -> &[Job] {
        &self.windows[p]
    }

    /// Drain every machine (simulate to the last deadline), flush the
    /// final chunk, and report.
    pub fn finish(mut self) -> Result<StreamReport, ModelError> {
        for s in &mut self.scheds {
            s.advance(f64::INFINITY);
        }
        self.compact()?;
        let machine_energy: Vec<f64> = self.scheds.iter().map(Sched::energy).collect();
        let energy: f64 = machine_energy.iter().sum();
        let replans: u64 = self.scheds.iter().map(Sched::replans).sum();
        let report = StreamReport {
            arrivals: self.arrivals,
            machines: self.opts.machines,
            alpha: self.opts.alpha,
            policy: self.opts.policy,
            scheduler: self.opts.scheduler,
            energy,
            machine_energy,
            lower_bound: self.lb.as_ref().map(|lb| lb.sum),
            peak_live: self.peak_live,
            peak_chunk: self.peak_chunk,
            compactions: self.compactions,
            forced_compactions: self.forced_compactions,
            replans,
            machine_events: self.machine_events,
            density_fallbacks: self.density_fallbacks,
        };
        ssp_probe::histogram!(
            "online.recompute_frac",
            (report.recompute_frac() * 100.0).round() as u64
        );
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssp_single::oa::oa_schedule;
    use ssp_workloads::{families, stream_family};

    fn run_stream(name: &str, n: usize, policy: Policy, scheduler: SchedulerKind) -> StreamReport {
        let spec = stream_family(name, 3, 2.0).unwrap();
        let mut engine = StreamEngine::new(
            EngineOptions::new(3, 2.0)
                .policy(policy)
                .scheduler(scheduler),
        )
        .unwrap();
        for job in spec.jobs(42).take(n) {
            engine.push(job).unwrap();
        }
        engine.finish().unwrap()
    }

    #[test]
    fn every_policy_and_scheduler_beats_the_certified_bound() {
        for policy in Policy::ALL {
            for scheduler in [SchedulerKind::Oa, SchedulerKind::Avr] {
                let r = run_stream("bursty", 300, policy, scheduler);
                assert_eq!(r.arrivals, 300);
                let ratio = r.ratio().expect("lower bound is on by default");
                assert!(
                    ratio >= 1.0 - 1e-6,
                    "{policy}/{} ratio {ratio} < 1",
                    scheduler.name()
                );
                assert!(ratio < 50.0, "{policy} ratio {ratio} looks broken");
                assert!(r.compactions > 0, "bursty stream must split naturally");
                assert!(r.peak_live < 300, "window never compacted");
            }
        }
    }

    #[test]
    fn round_robin_cycles() {
        let spec = stream_family("poisson", 4, 2.0).unwrap();
        let mut engine = StreamEngine::new(EngineOptions::new(4, 2.0)).unwrap();
        for (k, job) in spec.jobs(1).take(16).enumerate() {
            assert_eq!(engine.push(job).unwrap(), k % 4);
        }
    }

    #[test]
    fn engine_matches_offline_oa_on_one_machine() {
        // One machine: dispatch is trivial and the engine IS single-
        // processor OA — its exact energy must match the offline reference.
        let spec = stream_family("poisson", 1, 2.0).unwrap();
        let jobs: Vec<Job> = spec.jobs(9).take(120).collect();
        let mut engine = StreamEngine::new(EngineOptions::new(1, 2.0)).unwrap();
        for job in &jobs {
            engine.push(*job).unwrap();
        }
        let r = engine.finish().unwrap();
        let reference = oa_schedule(&jobs, 2.0, 0).energy(2.0);
        assert!(
            (r.energy - reference).abs() <= 1e-9 * reference,
            "{} vs {reference}",
            r.energy
        );
    }

    #[test]
    fn forced_compaction_kicks_in_when_windows_refuse_to_close() {
        let spec = stream_family("heavy", 2, 2.0).unwrap();
        let mut engine = StreamEngine::new(EngineOptions::new(2, 2.0).window_cap(64)).unwrap();
        for job in spec.jobs(5).take(2000) {
            engine.push(job).unwrap();
        }
        let r = engine.finish().unwrap();
        assert!(r.forced_compactions > 0, "heavy stream never hit the cap");
        assert!(r.peak_chunk <= 64);
        assert!(r.ratio().unwrap() >= 1.0 - 1e-6);
    }

    #[test]
    fn bad_arrivals_are_typed_errors_and_leave_state_intact() {
        let mut engine = StreamEngine::new(EngineOptions::new(2, 2.0)).unwrap();
        engine.push(Job::new(0, 1.0, 5.0, 7.0)).unwrap();
        // Out of order.
        assert!(engine.push(Job::new(1, 1.0, 4.0, 9.0)).is_err());
        // Invalid fields.
        assert!(engine.push(Job::new(2, -1.0, 6.0, 9.0)).is_err());
        assert!(engine.push(Job::new(3, 1.0, 6.0, 6.0)).is_err());
        assert!(engine.push(Job::new(4, f64::NAN, 6.0, 9.0)).is_err());
        // The good job still finishes cleanly.
        let r = engine.finish().unwrap();
        assert_eq!(r.arrivals, 1);
        assert!(r.energy > 0.0);
    }

    #[test]
    fn density_policy_spreads_simultaneous_tight_jobs() {
        let mut engine =
            StreamEngine::new(EngineOptions::new(2, 2.0).policy(Policy::DensityAware)).unwrap();
        let a = engine.push(Job::new(0, 1.0, 0.0, 1.0)).unwrap();
        let b = engine.push(Job::new(1, 1.0, 0.0, 1.0)).unwrap();
        assert_ne!(a, b, "identical tight jobs must land on distinct machines");
        let r = engine.finish().unwrap();
        // Each runs alone at speed 1 under OA: energy 2 at alpha 2 — optimal.
        assert!((r.energy - 2.0).abs() < 1e-9);
    }

    #[test]
    fn load_policy_balances_an_adversarial_rr_stream() {
        // Alternating heavy/light jobs: round-robin piles all heavy work
        // onto machine 0, load-aware interleaves. Both stay feasible; the
        // load-aware energy must not exceed round-robin's.
        let mk = |k: u32| {
            let heavy = k.is_multiple_of(2);
            let t = f64::from(k / 2) * 4.0;
            Job::new(
                k,
                if heavy { 8.0 } else { 1.0 },
                t,
                t + if heavy { 16.0 } else { 4.0 },
            )
        };
        let run = |policy| {
            let mut e = StreamEngine::new(EngineOptions::new(2, 2.0).policy(policy)).unwrap();
            for k in 0..40 {
                e.push(mk(k)).unwrap();
            }
            e.finish().unwrap().energy
        };
        assert!(run(Policy::LoadAware) <= run(Policy::RoundRobin) * (1.0 + 1e-9));
    }

    #[test]
    fn lb_off_still_detects_splits_with_empty_buffers() {
        let spec = stream_family("bursty", 2, 2.0).unwrap();
        let mut engine =
            StreamEngine::new(EngineOptions::new(2, 2.0).lower_bound(LbMode::Off)).unwrap();
        for job in spec.jobs(13).take(400) {
            engine.push(job).unwrap();
        }
        let r = engine.finish().unwrap();
        assert!(r.lower_bound.is_none());
        assert!(r.compactions > 0);
        assert!(r.peak_chunk <= 4096);
    }

    #[test]
    fn avr_engine_on_one_machine_matches_reference_energy() {
        let inst = families::general(60, 1, 2.2).gen(17);
        let mut jobs = inst.jobs().to_vec();
        jobs.sort_by(|a, b| a.release.total_cmp(&b.release).then(a.id.cmp(&b.id)));
        let mut engine =
            StreamEngine::new(EngineOptions::new(1, 2.2).scheduler(SchedulerKind::Avr)).unwrap();
        for job in &jobs {
            engine.push(*job).unwrap();
        }
        let r = engine.finish().unwrap();
        let reference = ssp_single::avr::avr_energy(&jobs, 2.2);
        assert!((r.energy - reference).abs() <= 1e-9 * reference);
    }
}
