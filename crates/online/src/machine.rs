//! Per-machine incremental online schedulers: Optimal Available and AVR.
//!
//! Both simulators are *event-local*: the cost of absorbing an arrival or a
//! completion is a function of the machine's **live window** (its currently
//! alive jobs), never of the stream's history. That is the property the
//! engine's compaction invariant rests on — dropping expired state cannot
//! change future behavior, because future behavior never reads it.
//!
//! * [`OaMachine`] — Optimal Available. At any instant the policy runs the
//!   earliest-deadline alive job at speed `max_k (Σ_{i≤k} rem_i)/(d_k−t)`
//!   (deadline-sorted prefix intensities of the *remaining* works, YDS of
//!   the available work re-released at `t`). The speed is piecewise
//!   constant between the machine's **own** events (its arrivals and
//!   completions), so the simulator caches it and replans only there:
//!   advancing past a foreign arrival costs O(1), a replan costs one
//!   prefix scan of the live window (counter `online.replans`).
//! * [`AvrMachine`] — Average Rate. The speed is the sum of alive
//!   densities; each job is processed at exactly its density across its
//!   whole span. Fully incremental: an arrival adds its density, a
//!   deadline expiry (min-heap) subtracts it — AVR never replans at all.
//!
//! Energies are exact integrals of the simulated speed profiles; neither
//! simulator materializes a [`ssp_model::Schedule`], which is what keeps
//! memory flat across 10^6-job streams.

use ssp_model::numeric::{pow_alpha, Tol};
use ssp_model::{Job, JobId};
use std::collections::BinaryHeap;

/// An alive job inside an [`OaMachine`]: deadline-sorted, remaining work
/// decreasing as the simulation executes it.
#[derive(Debug, Clone, Copy)]
struct OaJob {
    deadline: f64,
    remaining: f64,
    work: f64,
    id: JobId,
}

/// Incremental Optimal Available simulator for one machine.
pub struct OaMachine {
    alpha: f64,
    tol: Tol,
    now: f64,
    energy: f64,
    /// Alive jobs sorted by `(deadline, id)` ascending; front is the EDF job.
    alive: Vec<OaJob>,
    /// Cached OA speed, valid until the machine's next own event.
    speed: f64,
    replans: u64,
}

impl OaMachine {
    /// A fresh, empty machine running at power exponent `alpha`.
    pub fn new(alpha: f64) -> Self {
        OaMachine {
            alpha,
            tol: Tol::default(),
            now: f64::NEG_INFINITY,
            energy: 0.0,
            alive: Vec::new(),
            speed: 0.0,
            replans: 0,
        }
    }

    /// Recompute the cached OA speed from the deadline-sorted prefix
    /// intensities of the remaining works. One scan of the live window.
    fn replan(&mut self) {
        self.replans += 1;
        ssp_probe::counter!("online.replans");
        let mut acc = 0.0;
        let mut speed = 0.0f64;
        for j in &self.alive {
            acc += j.remaining;
            debug_assert!(
                j.deadline > self.now,
                "OA replanning past deadline {} at {} — this is a bug",
                j.deadline,
                self.now
            );
            let g = acc / (j.deadline - self.now);
            if g > speed {
                speed = g;
            }
        }
        self.speed = speed;
    }

    /// Execute the cached plan up to time `t` (`t = ∞` drains the machine),
    /// replanning at completions only.
    pub fn advance(&mut self, t: f64) {
        while !self.alive.is_empty() && self.now < t {
            let speed = self.speed;
            debug_assert!(speed > 0.0, "alive OA machine must run at positive speed");
            let front = self.alive[0];
            let completion = self.now + front.remaining / speed;
            let until = completion.min(t);
            let progressed = until > self.now;
            if progressed {
                self.energy += (until - self.now) * pow_alpha(speed, self.alpha);
                self.alive[0].remaining -= speed * (until - self.now);
                self.now = until;
            }
            if self.alive[0].remaining <= self.tol.margin(front.work) {
                assert!(
                    self.now <= front.deadline + self.tol.margin(front.deadline.abs().max(1.0)),
                    "OA missed deadline of {} — this is a bug",
                    front.id
                );
                self.alive.remove(0);
                self.replan();
            } else if until >= t || !progressed {
                // Reached the horizon, or (denormal windows only) the step
                // cannot make progress — stop rather than spin.
                break;
            }
        }
        if self.now < t && t.is_finite() {
            self.now = t;
        }
    }

    /// Absorb an arrival (the engine has already advanced the machine to
    /// the job's release).
    pub fn arrive(&mut self, job: &Job) {
        debug_assert!(job.release >= self.now || self.now == f64::NEG_INFINITY);
        self.now = self.now.max(job.release);
        let rec = OaJob {
            deadline: job.deadline,
            remaining: job.work,
            work: job.work,
            id: job.id,
        };
        let at = self
            .alive
            .partition_point(|j| (j.deadline, j.id) < (rec.deadline, rec.id));
        self.alive.insert(at, rec);
        self.replan();
    }

    /// Remaining (unfinished) work on the machine — the load-aware
    /// dispatcher's signal.
    pub fn load(&self) -> f64 {
        self.alive.iter().map(|j| j.remaining).sum()
    }

    /// Exact energy of the speed profile simulated so far.
    pub fn energy(&self) -> f64 {
        self.energy
    }

    /// Prefix-scan replans so far (one per own arrival or completion).
    pub fn replans(&self) -> u64 {
        self.replans
    }

    /// Alive (unfinished, unexpired) jobs on this machine.
    pub fn live_len(&self) -> usize {
        self.alive.len()
    }
}

/// A pending density expiry inside an [`AvrMachine`]; the heap is a
/// min-heap on the deadline (ties broken by the bits of the density so the
/// order is total and deterministic).
struct Expiry {
    deadline: f64,
    den: f64,
}

impl PartialEq for Expiry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}
impl Eq for Expiry {}
impl PartialOrd for Expiry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Expiry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest deadline.
        other
            .deadline
            .total_cmp(&self.deadline)
            .then(other.den.total_cmp(&self.den))
    }
}

/// Incremental Average Rate simulator for one machine.
pub struct AvrMachine {
    alpha: f64,
    now: f64,
    energy: f64,
    /// Current speed: the sum of alive densities.
    density: f64,
    expiries: BinaryHeap<Expiry>,
}

impl AvrMachine {
    /// A fresh, empty machine running at power exponent `alpha`.
    pub fn new(alpha: f64) -> Self {
        AvrMachine {
            alpha,
            now: f64::NEG_INFINITY,
            energy: 0.0,
            density: 0.0,
            expiries: BinaryHeap::new(),
        }
    }

    /// Integrate the density profile up to `t`, expiring deadlines in order.
    pub fn advance(&mut self, t: f64) {
        while let Some(e) = self.expiries.peek() {
            if e.deadline > t {
                break;
            }
            if self.now.is_finite() && e.deadline > self.now {
                self.energy += (e.deadline - self.now) * pow_alpha(self.density, self.alpha);
                self.now = e.deadline;
            }
            self.density -= e.den;
            self.expiries.pop();
        }
        if self.expiries.is_empty() {
            // Kill accumulated subtraction residue at every idle point; this
            // is also what makes natural compaction splits exact.
            self.density = 0.0;
        }
        if t.is_finite() {
            if self.now.is_finite() && t > self.now && self.density > 0.0 {
                self.energy += (t - self.now) * pow_alpha(self.density, self.alpha);
            }
            self.now = self.now.max(t);
        }
    }

    /// Absorb an arrival: add its density until its deadline.
    pub fn arrive(&mut self, job: &Job) {
        self.now = self.now.max(job.release);
        self.density += job.density();
        self.expiries.push(Expiry {
            deadline: job.deadline,
            den: job.density(),
        });
    }

    /// Residual committed work `Σ den_i · (d_i − now)` — the load-aware
    /// dispatcher's signal.
    pub fn load(&self) -> f64 {
        self.expiries
            .iter()
            .map(|e| e.den * (e.deadline - self.now).max(0.0))
            .sum()
    }

    /// Exact energy of the density profile integrated so far.
    pub fn energy(&self) -> f64 {
        self.energy
    }

    /// Pending deadline expiries (alive jobs) on this machine.
    pub fn live_len(&self) -> usize {
        self.expiries.len()
    }
}

/// One machine of the engine: either scheduler behind a common surface.
pub(crate) enum Sched {
    Oa(OaMachine),
    Avr(AvrMachine),
}

impl Sched {
    pub(crate) fn advance(&mut self, t: f64) {
        match self {
            Sched::Oa(m) => m.advance(t),
            Sched::Avr(m) => m.advance(t),
        }
    }
    pub(crate) fn arrive(&mut self, job: &Job) {
        match self {
            Sched::Oa(m) => m.arrive(job),
            Sched::Avr(m) => m.arrive(job),
        }
    }
    pub(crate) fn load(&self) -> f64 {
        match self {
            Sched::Oa(m) => m.load(),
            Sched::Avr(m) => m.load(),
        }
    }
    pub(crate) fn energy(&self) -> f64 {
        match self {
            Sched::Oa(m) => m.energy(),
            Sched::Avr(m) => m.energy(),
        }
    }
    pub(crate) fn replans(&self) -> u64 {
        match self {
            Sched::Oa(m) => m.replans(),
            Sched::Avr(_) => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssp_single::avr::avr_energy;
    use ssp_single::oa::oa_schedule;
    use ssp_workloads::families;

    /// Feed one machine's whole job list through the incremental simulator
    /// and compare against the offline reference implementation.
    #[test]
    fn oa_machine_matches_offline_oa_schedule() {
        for seed in [1u64, 2, 3, 4] {
            let inst = families::bursty(40, 1, 2.0).gen(seed);
            let mut m = OaMachine::new(2.0);
            for j in inst.jobs() {
                m.advance(j.release);
                m.arrive(j);
            }
            m.advance(f64::INFINITY);
            let reference = oa_schedule(inst.jobs(), 2.0, 0).energy(2.0);
            assert!(
                (m.energy() - reference).abs() <= 1e-9 * reference,
                "seed {seed}: incremental {} vs offline {reference}",
                m.energy()
            );
            assert_eq!(m.live_len(), 0);
        }
    }

    #[test]
    fn avr_machine_matches_offline_avr_energy() {
        for seed in [5u64, 6, 7] {
            let inst = families::general(35, 1, 2.4).gen(seed);
            let mut jobs = inst.jobs().to_vec();
            jobs.sort_by(|a, b| a.release.total_cmp(&b.release));
            let mut m = AvrMachine::new(2.4);
            for j in &jobs {
                m.advance(j.release);
                m.arrive(j);
            }
            m.advance(f64::INFINITY);
            let reference = avr_energy(&jobs, 2.4);
            assert!(
                (m.energy() - reference).abs() <= 1e-9 * reference,
                "seed {seed}: incremental {} vs offline {reference}",
                m.energy()
            );
        }
    }

    #[test]
    fn oa_replans_only_at_own_events() {
        // Two far-apart jobs: 2 arrivals + 2 completions = 4 replans, no
        // matter how many foreign advances happen in between.
        let mut m = OaMachine::new(2.0);
        m.advance(0.0);
        m.arrive(&Job::new(0, 1.0, 0.0, 2.0));
        for k in 0..50 {
            m.advance(0.02 * k as f64);
        }
        m.advance(10.0);
        m.arrive(&Job::new(1, 1.0, 10.0, 12.0));
        m.advance(f64::INFINITY);
        assert_eq!(m.replans(), 4);
        // Each job alone in its window: OA runs it at density 0.5.
        let expect = 2.0 * 2.0 * pow_alpha(0.5, 2.0);
        assert!((m.energy() - expect).abs() < 1e-12);
    }

    #[test]
    fn avr_density_resets_exactly_at_idle_points() {
        let mut m = AvrMachine::new(2.0);
        m.advance(0.0);
        m.arrive(&Job::new(0, 0.3, 0.0, 1.0));
        m.arrive(&Job::new(1, 0.7, 0.0, 1.3));
        m.advance(5.0);
        assert_eq!(m.density, 0.0);
        assert_eq!(m.live_len(), 0);
    }
}
