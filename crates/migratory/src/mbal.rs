//! MBAL — makespan minimization under an energy budget.
//!
//! Given jobs with release dates (deadlines ignored), `m` machines and an
//! energy budget `E`, find the smallest makespan `X` such that a feasible
//! migratory schedule finishing by `X` consumes at most `E`. Monotonicity
//! (larger `X` ⇒ cheaper optimum) enables an outer binary search over `X`;
//! each probe clamps every deadline to `X` and asks BAL for the optimal
//! energy of the clamped instance.
//!
//! Bounds: with total work `W`,
//! `X_LB = (1/m)·(W^α/E)^(1/(α-1))` (perfect parallelism) and
//! `X_UB = max_i r_i + (W^α/E)^(1/(α-1))` (serial execution after the last
//! release at the uniform speed that exactly spends `E`).

use crate::bal::{bal, BalSolution};
use ssp_model::numeric::{bisect_threshold, BINARY_SEARCH_REL_WIDTH};
use ssp_model::{Instance, Schedule};

/// Output of [`mbal`].
#[derive(Debug, Clone)]
pub struct MbalSolution {
    /// The minimal makespan found.
    pub makespan: f64,
    /// The optimal migratory solution of the instance clamped at `makespan`.
    pub solution: BalSolution,
    /// Energy of that solution (`<= budget` up to search tolerance).
    pub energy: f64,
    /// The instance clamped at the final makespan (deadlines `min(d_i, X)`).
    pub clamped: Instance,
}

impl MbalSolution {
    /// Materialize the schedule achieving the makespan.
    pub fn schedule(&self) -> Schedule {
        self.solution.schedule(&self.clamped)
    }
}

/// Minimize makespan under energy budget `E`. Deadlines in `instance` act as
/// *additional* constraints (pass `+inf`-like large deadlines for the pure
/// makespan problem). Returns `None` if even the unclamped instance cannot
/// meet the budget (deadline constraints force energy above `E`).
///
/// ```
/// use ssp_model::{Instance, Job};
/// use ssp_migratory::mbal::mbal;
///
/// // One job, no real deadline: spend budget E on work w at constant speed
/// // s with w·s^(α−1) = E, finishing at w/s.
/// let inst = Instance::new(vec![Job::new(0, 2.0, 0.0, 1e9)], 1, 3.0).unwrap();
/// let sol = mbal(&inst, 8.0).unwrap();
/// let s = (8.0f64 / 2.0).powf(0.5); // E/w, alpha-1 = 2
/// assert!((sol.makespan - 2.0 / s).abs() < 1e-6);
/// ```
pub fn mbal(instance: &Instance, budget: f64) -> Option<MbalSolution> {
    assert!(
        budget > 0.0 && budget.is_finite(),
        "budget must be positive"
    );
    if instance.is_empty() {
        let sol = bal(instance);
        return Some(MbalSolution {
            makespan: 0.0,
            energy: 0.0,
            solution: sol,
            clamped: instance.clone(),
        });
    }
    let w: f64 = instance.total_work();
    let alpha = instance.alpha();
    let m = instance.machines() as f64;
    let serial = (w.powf(alpha) / budget).powf(1.0 / (alpha - 1.0));
    let max_release = instance
        .jobs()
        .iter()
        .map(|j| j.release)
        .fold(f64::NEG_INFINITY, f64::max);
    let x_lb = serial / m;
    let mut x_ub = max_release + serial;
    // Existing deadlines may *cap* the usable makespan: clamping beyond the
    // latest deadline changes nothing, so the search is still well-defined;
    // but the budget may be unreachable if deadlines alone force E* > budget.
    let unclamped_energy = bal(instance).energy;
    if unclamped_energy > budget * (1.0 + 1e-9) {
        return None;
    }
    // Ensure the upper endpoint is feasible for the *clamped* problem too
    // (deadline interactions can shift the threshold slightly upward).
    // Each probe runs a full BAL solve, so cache the last feasible one: the
    // bisection's returned `hi` is always its most recent feasible probe,
    // letting the final re-solve below be skipped.
    let mut last_feasible: Option<(f64, BalSolution, Instance)> = None;
    let mut feasible = |x: f64| -> bool {
        if x <= max_release {
            return false;
        }
        match instance.clamp_deadlines(x) {
            Err(_) => false,
            Ok(clamped) => {
                let sol = bal(&clamped);
                let ok = sol.energy <= budget * (1.0 + 1e-9);
                if ok {
                    last_feasible = Some((x, sol, clamped));
                }
                ok
            }
        }
    };
    let mut guard = 0;
    while !feasible(x_ub) {
        x_ub = max_release + (x_ub - max_release) * 2.0;
        guard += 1;
        assert!(
            guard < 64,
            "could not establish a feasible makespan upper bound"
        );
    }
    let lo = x_lb.min(x_ub).max(max_release * (1.0 + 1e-15));
    let (_, x) = bisect_threshold(lo, x_ub, BINARY_SEARCH_REL_WIDTH.max(1e-11), feasible);
    let (solution, clamped) = match last_feasible {
        Some((xf, sol, cl)) if xf == x => (sol, cl),
        _ => {
            // Defensive recompute; unreachable when the bisection returned
            // its last feasible probe, as it always does today.
            let cl = instance
                .clamp_deadlines(x)
                .expect("feasible x clamps validly");
            (bal(&cl), cl)
        }
    };
    let energy = solution.energy;
    Some(MbalSolution {
        makespan: x,
        solution,
        energy,
        clamped,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssp_model::{Instance, Job};

    /// Jobs with effectively-unbounded deadlines for pure makespan problems.
    fn free(jobs: Vec<(f64, f64)>, m: usize, alpha: f64) -> Instance {
        let horizon = 1e6;
        let jobs: Vec<Job> = jobs
            .into_iter()
            .enumerate()
            .map(|(i, (w, r))| Job::new(i as u32, w, r, horizon))
            .collect();
        Instance::new(jobs, m, alpha).unwrap()
    }

    #[test]
    fn single_job_closed_form() {
        // One job, release 0, work w, budget E: run at constant speed s with
        // w·s^(α-1) = E, makespan w/s.
        let (w, e, alpha) = (2.0, 4.0, 3.0);
        let inst = free(vec![(w, 0.0)], 1, alpha);
        let sol = mbal(&inst, e).unwrap();
        let s = (e / w).powf(1.0 / (alpha - 1.0));
        let expect = w / s;
        assert!(
            (sol.makespan - expect).abs() < 1e-6 * expect,
            "makespan {} vs {}",
            sol.makespan,
            expect
        );
        assert!(sol.energy <= e * (1.0 + 1e-6));
    }

    #[test]
    fn parallel_jobs_hit_the_lower_bound() {
        // m equal jobs released at 0 on m machines: perfect parallelism,
        // X = (1/m)·(W^α/E)^(1/(α-1)) exactly.
        let (m, w_each, e, alpha) = (3usize, 1.0, 2.0, 2.0);
        let inst = free(vec![(w_each, 0.0); 3], m, alpha);
        let sol = mbal(&inst, e).unwrap();
        let w_total = 3.0 * w_each;
        let expect = (w_total.powf(alpha) / e).powf(1.0 / (alpha - 1.0)) / m as f64;
        assert!(
            (sol.makespan - expect).abs() < 1e-6 * expect,
            "makespan {} vs {}",
            sol.makespan,
            expect
        );
    }

    #[test]
    fn more_budget_means_smaller_makespan() {
        let inst = free(vec![(2.0, 0.0), (1.0, 0.5), (3.0, 1.0)], 2, 2.5);
        let mut prev = f64::INFINITY;
        for budget in [1.0, 2.0, 4.0, 8.0, 16.0] {
            let sol = mbal(&inst, budget).unwrap();
            assert!(
                sol.makespan <= prev * (1.0 + 1e-9),
                "budget {budget}: makespan {} vs previous {prev}",
                sol.makespan
            );
            assert!(sol.energy <= budget * (1.0 + 1e-6));
            prev = sol.makespan;
        }
    }

    #[test]
    fn release_dates_delay_the_makespan() {
        let early = free(vec![(1.0, 0.0), (1.0, 0.0)], 2, 2.0);
        let late = free(vec![(1.0, 0.0), (1.0, 5.0)], 2, 2.0);
        let e = 1.0;
        let m_early = mbal(&early, e).unwrap().makespan;
        let m_late = mbal(&late, e).unwrap().makespan;
        assert!(m_late > 5.0, "second job can only start at its release");
        assert!(m_early < m_late);
    }

    #[test]
    fn schedule_meets_makespan_and_budget() {
        let inst = free(vec![(2.0, 0.0), (1.0, 1.0), (1.5, 0.5)], 2, 2.0);
        let budget = 3.0;
        let sol = mbal(&inst, budget).unwrap();
        let schedule = sol.schedule();
        let stats = schedule.validate(&sol.clamped, Default::default()).unwrap();
        assert!(stats.makespan <= sol.makespan * (1.0 + 1e-9));
        assert!(stats.energy <= budget * (1.0 + 1e-6));
    }

    #[test]
    fn impossible_budget_under_hard_deadlines() {
        // A hard deadline forces at least E = w^α / d^(α-1).
        let inst = Instance::new(vec![Job::new(0, 2.0, 0.0, 1.0)], 1, 2.0).unwrap();
        // Minimum energy = 2^2/1 = 4; budget below that is impossible.
        assert!(mbal(&inst, 3.9).is_none());
        assert!(mbal(&inst, 4.1).is_some());
    }

    #[test]
    fn empty_instance_trivial() {
        let inst = Instance::new(vec![], 2, 2.0).unwrap();
        let sol = mbal(&inst, 1.0).unwrap();
        assert_eq!(sol.makespan, 0.0);
    }
}
