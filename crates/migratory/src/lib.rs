//! # ssp-migratory
//!
//! The **migratory** multiprocessor speed-scaling optimum and its supporting
//! machinery. In the migratory model a preempted job may resume on any
//! processor (never running on two at once); the optimal energy is therefore
//! a *lower bound* on the non-migratory optimum studied by the target paper,
//! and this crate is the workspace's certified lower-bound oracle.
//!
//! Contents:
//!
//! * [`wap`] — the *Work Assignment Problem*: given per-job time demands and
//!   per-interval processor-time capacities, decide feasibility by a max-flow
//!   on the three-layer network `source → jobs → intervals → sink`, and read
//!   back per-interval time allotments.
//! * [`mcnaughton`] — McNaughton's wrap-around rule, which turns per-interval
//!   allotments into an explicit schedule with at most `m_j` processors and
//!   no parallel self-execution.
//! * [`mod@bal`] — the optimal algorithm: peel *critical speeds* one binary
//!   search at a time, identifying critical jobs and saturated intervals from
//!   a minimum cut (residual reachability) of the slightly-infeasible flow
//!   network.
//! * [`kkt`] — a machine-checkable optimality certificate: the KKT conditions
//!   of the convex program are necessary **and sufficient**, so a schedule
//!   that passes [`kkt::certify`] is optimal (up to numeric tolerance).
//! * [`mod@mbal`] — the extension minimizing makespan under an energy budget by
//!   an outer binary search over a common deadline.
//!
//! ```rust
//! use ssp_model::{Instance, Job};
//! use ssp_migratory::bal::bal;
//!
//! let inst = Instance::new(
//!     vec![Job::new(0, 4.0, 0.0, 2.0), Job::new(1, 1.0, 0.0, 2.0)],
//!     2,
//!     2.0,
//! ).unwrap();
//! let sol = bal(&inst);
//! // Certified optimal energy for the migratory relaxation:
//! assert!(sol.energy > 0.0);
//! let schedule = sol.schedule(&inst);
//! schedule.validate(&inst, Default::default()).unwrap();
//! ```

#![warn(missing_docs)]

pub mod bal;
pub mod bounded;
pub mod downtime;
pub mod kkt;
pub mod mbal;
pub mod mcnaughton;
pub mod wap;

pub use bal::{bal, BalSolution};
pub use bounded::{bal_bounded, min_peak_speed};
pub use downtime::{bal_with_downtime, Downtime};
pub use kkt::{certify, KktViolation};
pub use mbal::{mbal, MbalSolution};
pub use wap::{schedule_with_processing_times, Wap, WapFlow};
