//! Bounded maximum speed (the main practical deviation from the paper's
//! unbounded-speed model).
//!
//! Real processors cap out at some `s_max`. Two observations make the
//! bounded model tractable on top of the machinery already built:
//!
//! * **BAL's first critical speed is the min-max speed**: the first peeling
//!   round computes the smallest uniform speed at which everything fits,
//!   and no feasible schedule (of any speed profile) can keep *every* job
//!   below that value — the first critical set genuinely needs it. Hence
//!   an instance is feasible under cap `s_max` **iff**
//!   [`min_peak_speed`]`(inst) ≤ s_max`.
//! * When feasible, the unbounded optimum (BAL) never exceeds that peak, so
//!   the energy-optimal bounded schedule *is* the unbounded one —
//!   [`bal_bounded`] just certifies the cap.
//!
//! When infeasible, one must drop jobs; throughput maximization under the
//! cap lives in `ssp-core::throughput`.

use crate::bal::{bal, BalSolution};
use crate::wap::Wap;
use ssp_model::numeric::{bisect_threshold, BINARY_SEARCH_REL_WIDTH};
use ssp_model::Instance;

/// The smallest achievable maximum speed of any feasible schedule: the
/// uniform-speed feasibility threshold (= BAL's first critical speed),
/// computed directly by one binary search over WAP feasibility.
pub fn min_peak_speed(instance: &Instance) -> f64 {
    if instance.is_empty() {
        return 0.0;
    }
    let (wap, intervals) = Wap::from_instance(instance);
    let lo = instance.max_density();
    let mut hi = {
        let mut v = lo;
        for j in 0..intervals.len() {
            let dens: f64 = intervals
                .alive(j)
                .iter()
                .map(|&i| instance.job(i).density())
                .sum();
            v = v.max(dens / instance.machines() as f64);
        }
        v * (1.0 + 1e-12)
    };
    // One warm-started solver across the whole search: only the uniform
    // speed (hence the source capacities) varies between probes.
    let mut solver = wap.solver();
    let mut p = vec![0.0; instance.len()];
    let mut feasible = |v: f64| -> bool {
        for (pi, job) in p.iter_mut().zip(instance.jobs()) {
            *pi = job.work / v;
        }
        solver.solve(&p);
        solver.feasible()
    };
    let mut guard = 0;
    while !feasible(hi) {
        hi *= 2.0;
        guard += 1;
        assert!(guard < 64, "could not find a feasible uniform speed");
    }
    let (_, v) = bisect_threshold(lo, hi, BINARY_SEARCH_REL_WIDTH, feasible);
    v
}

/// Optimal migratory solution under a maximum-speed cap, or `None` when the
/// cap makes the instance infeasible. When feasible the solution coincides
/// with the unbounded optimum (see module docs).
pub fn bal_bounded(instance: &Instance, s_max: f64) -> Option<BalSolution> {
    assert!(s_max > 0.0 && s_max.is_finite());
    if instance.is_empty() {
        return Some(bal(instance));
    }
    // Cheap reject before running the full algorithm.
    if min_peak_speed(instance) > s_max * (1.0 + 1e-9) {
        return None;
    }
    let sol = bal(instance);
    debug_assert!(
        sol.speeds.max_speed() <= s_max * (1.0 + 1e-6),
        "unbounded optimum exceeded a feasible cap — min_peak_speed is wrong"
    );
    Some(sol)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssp_model::{Instance, Job};
    use ssp_workloads::families;

    #[test]
    fn single_job_peak_is_density() {
        let inst = Instance::new(vec![Job::new(0, 3.0, 0.0, 2.0)], 2, 2.0).unwrap();
        assert!((min_peak_speed(&inst) - 1.5).abs() < 1e-9);
    }

    #[test]
    fn crowded_window_peak_is_load_over_capacity() {
        // 4 unit jobs, window [0,1], 2 machines: uniform speed 2 needed.
        let jobs: Vec<Job> = (0..4).map(|i| Job::new(i, 1.0, 0.0, 1.0)).collect();
        let inst = Instance::new(jobs, 2, 2.0).unwrap();
        assert!((min_peak_speed(&inst) - 2.0).abs() < 1e-8);
    }

    #[test]
    fn peak_matches_bal_first_round() {
        for seed in [1u64, 2, 3] {
            let inst = families::general(15, 3, 2.0).gen(seed);
            let direct = min_peak_speed(&inst);
            let first_round = ssp_migratory_first_round(&inst);
            assert!(
                (direct - first_round).abs() <= 1e-8 * first_round,
                "seed {seed}: {direct} vs {first_round}"
            );
        }
    }

    fn ssp_migratory_first_round(inst: &Instance) -> f64 {
        bal(inst).rounds.first().map(|r| r.speed).unwrap_or(0.0)
    }

    #[test]
    fn bounded_feasibility_threshold() {
        let jobs: Vec<Job> = (0..4).map(|i| Job::new(i, 1.0, 0.0, 1.0)).collect();
        let inst = Instance::new(jobs, 2, 2.0).unwrap();
        assert!(bal_bounded(&inst, 1.9).is_none());
        let sol = bal_bounded(&inst, 2.1).unwrap();
        assert!(sol.speeds.max_speed() <= 2.1);
        // And at (essentially) the threshold itself.
        assert!(bal_bounded(&inst, 2.0 * (1.0 + 1e-6)).is_some());
    }

    #[test]
    fn generous_cap_equals_unbounded_optimum() {
        let inst = families::general(12, 2, 2.5).gen(9);
        let unbounded = bal(&inst).energy;
        let capped = bal_bounded(&inst, 1e9).unwrap().energy;
        assert!((unbounded - capped).abs() <= 1e-9 * unbounded);
    }

    #[test]
    fn empty_instance() {
        let inst = Instance::new(vec![], 2, 2.0).unwrap();
        assert_eq!(min_peak_speed(&inst), 0.0);
        assert!(bal_bounded(&inst, 1.0).is_some());
    }
}
