//! McNaughton's wrap-around rule.
//!
//! Inside one interval `[a, b]` of length `L`, given per-job execution times
//! `t_i` with `t_i ≤ L` and `Σ t_i ≤ m·L`, a feasible preemptive schedule on
//! `m` machines always exists: lay the jobs end to end on machine 0, and
//! whenever the timeline overflows `b`, *wrap* the excess to the next machine
//! starting again at `a`. A job split by the wrap runs at the end of one
//! machine and the start of the next — the two pieces cannot overlap in time
//! precisely because `t_i ≤ L`.

use ssp_model::numeric::Tol;
use ssp_model::{JobId, Schedule, Time};

/// Emit the wrap-around schedule for one interval into `schedule`.
///
/// `pieces` is `(job, time, speed)`; times are clamped tolerantly against
/// `L` and the total against `m·L` (callers produce them from flow readback,
/// which carries `O(eps)` noise). Panics if a piece exceeds the interval or
/// the total exceeds capacity beyond tolerance.
pub fn mcnaughton(
    bounds: (Time, Time),
    machines: usize,
    pieces: &[(JobId, f64, f64)],
    schedule: &mut Schedule,
) {
    let (a, b) = bounds;
    let len = b - a;
    assert!(len > 0.0, "interval must have positive length");
    // 1e-6 relative: one notch looser than the allotment-normalization noise
    // upstream (BAL's probe-offset corrections are ~1e-7 relative).
    let tol = Tol::rel(1e-6);
    let total: f64 = pieces.iter().map(|&(_, t, _)| t).sum();
    let capacity = machines as f64 * len;
    // Upstream normalization errors scale with *job demands*, which can dwarf
    // a short interval's capacity in relative terms. Small overshoots are
    // therefore rescaled to fit exactly (the work shaved is far below the
    // validators' tolerance); anything beyond 1e-4 relative is a real bug.
    let squeeze = if total > capacity {
        assert!(
            total <= capacity * (1.0 + 1e-4),
            "total time {total} exceeds capacity {capacity} in [{a}, {b}]"
        );
        capacity / total
    } else {
        1.0
    };
    let pieces_owned: Vec<(JobId, f64, f64)> = pieces
        .iter()
        .map(|&(job, t, s)| (job, t * squeeze, s))
        .collect();
    let pieces = &pieces_owned[..];

    let mut machine = 0usize;
    let mut cursor = a;
    for &(job, t, speed) in pieces {
        assert!(
            tol.le(t, len),
            "piece {t} of {job} exceeds interval length {len}"
        );
        assert!(t >= 0.0, "negative piece for {job}");
        let t = t.min(len); // clamp tolerated overshoot
        let mut rem = t;
        while rem > 0.0 {
            // Numerical guard: if we've run past the last machine on pure
            // rounding slop, drop the sliver (within tolerance of zero).
            if machine >= machines {
                assert!(
                    tol.is_zero_at(rem, len),
                    "capacity overflow beyond tolerance: {rem} left for {job}"
                );
                break;
            }
            let room = b - cursor;
            let run = rem.min(room);
            schedule.run(job, machine, cursor, cursor + run, speed);
            cursor += run;
            rem -= run;
            if cursor >= b - tol.margin(len) {
                machine += 1;
                cursor = a;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssp_model::{Instance, Job};

    fn pieces(ts: &[f64]) -> Vec<(JobId, f64, f64)> {
        ts.iter()
            .enumerate()
            .map(|(i, &t)| (JobId(i as u32), t, 1.0))
            .collect()
    }

    /// Validate the wrap-around output directly: machine-overlap-free and
    /// self-overlap-free with exact per-job totals.
    fn check(bounds: (f64, f64), m: usize, ts: &[f64]) -> Schedule {
        let mut s = Schedule::new(m);
        mcnaughton(bounds, m, &pieces(ts), &mut s);
        // Build a synthetic instance whose windows equal the interval so the
        // audited validator can do the heavy lifting.
        let jobs: Vec<Job> = ts
            .iter()
            .enumerate()
            .map(|(i, &t)| Job::new(i as u32, t * 1.0, bounds.0, bounds.1))
            .collect();
        let inst = Instance::new(jobs, m, 2.0).unwrap();
        s.validate(&inst, Default::default()).unwrap();
        s
    }

    #[test]
    fn fits_on_one_machine_without_wrapping() {
        let s = check((0.0, 2.0), 2, &[0.5, 0.5, 1.0]);
        assert!(s.segments().iter().all(|g| g.machine == 0));
    }

    #[test]
    fn classic_three_jobs_two_machines_wrap() {
        // 3 × (4/3) on 2 machines over [0,2]: the middle job wraps.
        let s = check((0.0, 2.0), 2, &[4.0 / 3.0, 4.0 / 3.0, 4.0 / 3.0]);
        let wrapped: Vec<_> = s.segments().iter().filter(|g| g.job == JobId(1)).collect();
        assert_eq!(wrapped.len(), 2, "middle job must be split by the wrap");
        assert_ne!(wrapped[0].machine, wrapped[1].machine);
    }

    #[test]
    fn exact_full_capacity() {
        // Total exactly m*L with each piece exactly L.
        let s = check((1.0, 3.0), 3, &[2.0, 2.0, 2.0]);
        assert_eq!(s.len(), 3);
        let mut machines: Vec<usize> = s.segments().iter().map(|g| g.machine).collect();
        machines.sort_unstable();
        assert_eq!(machines, vec![0, 1, 2]);
    }

    #[test]
    fn split_pieces_never_overlap_in_time() {
        // A piece of length L-epsilon placed to straddle the wrap: its two
        // halves sit at the end of machine k and start of k+1 — check they
        // are disjoint in time (this is the heart of the wrap-around proof).
        let s = check((0.0, 1.0), 2, &[0.6, 0.9]);
        let halves: Vec<_> = s.segments().iter().filter(|g| g.job == JobId(1)).collect();
        assert_eq!(halves.len(), 2);
        let (first, second) = (halves[0], halves[1]);
        assert!(first.end <= second.start + 1e-12 || second.end <= first.start + 1e-12);
    }

    #[test]
    fn offset_interval_coordinates() {
        let s = check((5.0, 7.5), 2, &[2.0, 2.0]);
        for g in s.segments() {
            assert!(g.start >= 5.0 - 1e-12 && g.end <= 7.5 + 1e-12);
        }
    }

    #[test]
    fn tolerates_flow_noise() {
        // Slightly over L and slightly over capacity within 1e-7 relative.
        let mut s = Schedule::new(1);
        mcnaughton((0.0, 1.0), 1, &[(JobId(0), 1.0 + 1e-9, 1.0)], &mut s);
        assert_eq!(s.len(), 1);
    }

    #[test]
    #[should_panic(expected = "exceeds capacity")]
    fn rejects_overfull_interval() {
        let mut s = Schedule::new(1);
        mcnaughton((0.0, 1.0), 1, &pieces(&[0.7, 0.7]), &mut s);
    }

    #[test]
    #[should_panic(expected = "exceeds interval length")]
    fn rejects_oversized_piece() {
        let mut s = Schedule::new(3);
        mcnaughton((0.0, 1.0), 3, &pieces(&[1.4]), &mut s);
    }
}
