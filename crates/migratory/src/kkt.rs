//! KKT optimality certificate for the migratory convex program.
//!
//! The energy-minimization problem is convex, strictly feasible, and
//! differentiable, so the Karush–Kuhn–Tucker conditions are necessary *and
//! sufficient*. Translated into schedule structure, a feasible solution
//! `(speeds s_i, allotments t_ij)` is optimal **iff**:
//!
//! 1. every job runs at one constant speed (true by construction here);
//! 2. if `t_ij = 0` for an alive pair, then `s_i ≤ s_k` for every job `k`
//!    alive in `I_j` with `t_kj > 0`;
//! 3. if `t_ij = |I_j|`, then `s_i ≥ s_k` for every alive `k` with
//!    `t_kj < |I_j|`;
//! 4. all jobs with `0 < t_ij < |I_j|` in one interval share a single speed;
//! 5. if at most `m` jobs are alive in `I_j`, each of them has
//!    `t_ij = |I_j|`.
//!
//! Because the conditions are sufficient, [`certify`] is a *proof checker*:
//! any solution that passes (within tolerance) is optimal, independently of
//! how it was computed. The experiment harness certifies every BAL run.

use crate::bal::BalSolution;
use ssp_model::numeric::Tol;
use ssp_model::Instance;

/// A violated certificate condition, with enough context to debug.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // variant fields are self-describing
pub enum KktViolation {
    /// Allotment outside the job's alive intervals.
    AllotmentOutsideSpan { job: usize, interval: usize },
    /// Negative or over-long allotment.
    AllotmentOutOfRange {
        job: usize,
        interval: usize,
        time: f64,
        length: f64,
    },
    /// `Σ_j t_ij ≠ w_i / s_i`.
    WorkNotConserved {
        job: usize,
        allotted: f64,
        required: f64,
    },
    /// `Σ_i t_ij > m |I_j|`.
    CapacityExceeded {
        interval: usize,
        used: f64,
        capacity: f64,
    },
    /// Property 2 violated.
    IdleWhileSlowerRuns {
        job: usize,
        other: usize,
        interval: usize,
    },
    /// Property 3 violated.
    FullButSlower {
        job: usize,
        other: usize,
        interval: usize,
    },
    /// Property 4 violated.
    PartialSpeedsDiffer {
        job: usize,
        other: usize,
        interval: usize,
        s_a: f64,
        s_b: f64,
    },
    /// Property 5 violated.
    UnderloadedIntervalNotFull {
        job: usize,
        interval: usize,
        alive: usize,
    },
}

impl std::fmt::Display for KktViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KktViolation::AllotmentOutsideSpan { job, interval } => {
                write!(f, "job {job} allotted time outside its span (interval {interval})")
            }
            KktViolation::AllotmentOutOfRange { job, interval, time, length } => write!(
                f,
                "job {job} allotted {time} in interval {interval} of length {length}"
            ),
            KktViolation::WorkNotConserved { job, allotted, required } => {
                write!(f, "job {job}: allotted {allotted}, requires {required}")
            }
            KktViolation::CapacityExceeded { interval, used, capacity } => {
                write!(f, "interval {interval}: used {used} of {capacity}")
            }
            KktViolation::IdleWhileSlowerRuns { job, other, interval } => write!(
                f,
                "job {job} idle in interval {interval} while slower job {other} runs (P2)"
            ),
            KktViolation::FullButSlower { job, other, interval } => write!(
                f,
                "job {job} fills interval {interval} but is slower than partial job {other} (P3)"
            ),
            KktViolation::PartialSpeedsDiffer { job, other, interval, s_a, s_b } => write!(
                f,
                "partial jobs {job} ({s_a}) and {other} ({s_b}) differ in interval {interval} (P4)"
            ),
            KktViolation::UnderloadedIntervalNotFull { job, interval, alive } => write!(
                f,
                "interval {interval} has {alive} <= m alive jobs but job {job} does not fill it (P5)"
            ),
        }
    }
}

impl std::error::Error for KktViolation {}

/// Certify a BAL solution against the KKT conditions. `tol` classifies
/// allotments as zero / partial / full and compares speeds; the workspace
/// default for certificates is `Tol::rel(1e-6)` — far looser than the
/// binary-search width, far tighter than any real violation.
// Index loops throughout: `t[i][j]` mirrors the paper's allotment matrix.
#[allow(clippy::needless_range_loop)]
pub fn certify(instance: &Instance, sol: &BalSolution, tol: Tol) -> Result<(), KktViolation> {
    let _span = ssp_probe::span("kkt.certify");
    ssp_probe::counter!("kkt.certifications");
    let n = instance.len();
    let ivals = &sol.intervals;
    let m = instance.machines() as f64;

    // Dense allotment lookup and feasibility checks.
    let mut t = vec![vec![0.0f64; ivals.len()]; n];
    for (i, allot) in sol.allotments.iter().enumerate() {
        for &(j, time) in allot {
            if !ivals.intervals_of(i).contains(&j) {
                return Err(KktViolation::AllotmentOutsideSpan {
                    job: i,
                    interval: j,
                });
            }
            t[i][j] += time;
        }
    }
    for i in 0..n {
        for j in 0..ivals.len() {
            let len = ivals.length(j);
            if t[i][j] < -tol.margin(len) || t[i][j] > len + tol.margin(len) {
                return Err(KktViolation::AllotmentOutOfRange {
                    job: i,
                    interval: j,
                    time: t[i][j],
                    length: len,
                });
            }
        }
        let allotted: f64 = t[i].iter().sum();
        let required = instance.job(i).work / sol.speeds.get(i);
        if !tol.eq(allotted, required) {
            return Err(KktViolation::WorkNotConserved {
                job: i,
                allotted,
                required,
            });
        }
    }
    for j in 0..ivals.len() {
        let used: f64 = (0..n).map(|i| t[i][j]).sum();
        let capacity = m * ivals.length(j);
        if !tol.le(used, capacity) {
            return Err(KktViolation::CapacityExceeded {
                interval: j,
                used,
                capacity,
            });
        }
    }

    // Structural properties per interval.
    for j in 0..ivals.len() {
        let len = ivals.length(j);
        let alive = ivals.alive(j);
        let is_zero = |i: usize| t[i][j] <= tol.margin(len);
        let is_full = |i: usize| t[i][j] >= len - tol.margin(len);

        // P5: few alive jobs => all full.
        if alive.len() <= instance.machines() {
            for &i in alive {
                if !is_full(i) {
                    return Err(KktViolation::UnderloadedIntervalNotFull {
                        job: i,
                        interval: j,
                        alive: alive.len(),
                    });
                }
            }
        }

        for &i in alive {
            let s_i = sol.speeds.get(i);
            for &k in alive {
                if i == k {
                    continue;
                }
                let s_k = sol.speeds.get(k);
                // P2: idle job never faster than a runner.
                if is_zero(i) && !is_zero(k) && tol.gt(s_i, s_k) {
                    return Err(KktViolation::IdleWhileSlowerRuns {
                        job: i,
                        other: k,
                        interval: j,
                    });
                }
                // P3: a full job is at least as fast as any non-full one.
                if is_full(i) && !is_full(k) && tol.lt(s_i, s_k) {
                    return Err(KktViolation::FullButSlower {
                        job: i,
                        other: k,
                        interval: j,
                    });
                }
                // P4: partial runners share one speed.
                let partial_i = !is_zero(i) && !is_full(i);
                let partial_k = !is_zero(k) && !is_full(k);
                if partial_i && partial_k && !tol.eq(s_i, s_k) {
                    return Err(KktViolation::PartialSpeedsDiffer {
                        job: i,
                        other: k,
                        interval: j,
                        s_a: s_i,
                        s_b: s_k,
                    });
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bal::bal;
    use ssp_model::{Instance, Job};

    fn cert_tol() -> Tol {
        Tol::rel(1e-6)
    }

    #[test]
    fn bal_solutions_certify_on_varied_instances() {
        let cases: Vec<(Vec<Job>, usize)> = vec![
            (vec![Job::new(0, 2.0, 0.0, 2.0)], 1),
            (
                vec![Job::new(0, 4.0, 0.0, 1.0), Job::new(1, 1.0, 0.0, 10.0)],
                2,
            ),
            (
                vec![
                    Job::new(0, 3.0, 0.0, 2.0),
                    Job::new(1, 2.0, 0.0, 3.0),
                    Job::new(2, 2.0, 1.0, 4.0),
                    Job::new(3, 1.0, 2.0, 5.0),
                    Job::new(4, 4.0, 0.0, 5.0),
                ],
                2,
            ),
            (
                vec![
                    Job::new(0, 1.0, 0.0, 1.0),
                    Job::new(1, 1.0, 0.5, 1.5),
                    Job::new(2, 1.0, 1.0, 2.0),
                    Job::new(3, 1.0, 0.0, 2.0),
                ],
                3,
            ),
        ];
        for (jobs, m) in cases {
            for alpha in [1.5, 2.0, 3.0] {
                let inst = Instance::new(jobs.clone(), m, alpha).unwrap();
                let sol = bal(&inst);
                certify(&inst, &sol, cert_tol())
                    .unwrap_or_else(|v| panic!("certificate failed (m={m}, alpha={alpha}): {v}"));
            }
        }
    }

    #[test]
    fn detects_wrong_speed() {
        let inst = Instance::new(
            vec![Job::new(0, 2.0, 0.0, 2.0), Job::new(1, 2.0, 0.0, 2.0)],
            1,
            2.0,
        )
        .unwrap();
        let mut sol = bal(&inst);
        // Corrupt: claim a slower speed without adjusting allotments.
        sol.speeds.set(0, sol.speeds.get(0) * 0.5);
        assert!(matches!(
            certify(&inst, &sol, cert_tol()),
            Err(KktViolation::WorkNotConserved { job: 0, .. })
        ));
    }

    #[test]
    fn detects_capacity_violation() {
        let inst = Instance::new(
            vec![Job::new(0, 2.0, 0.0, 2.0), Job::new(1, 2.0, 0.0, 2.0)],
            1,
            2.0,
        )
        .unwrap();
        let mut sol = bal(&inst);
        // Give job 0 extra phantom time: breaks conservation AND capacity;
        // conservation triggers first unless we also bump the speed story.
        sol.allotments[0].push((0, 2.0));
        let err = certify(&inst, &sol, cert_tol()).unwrap_err();
        assert!(matches!(
            err,
            KktViolation::WorkNotConserved { .. }
                | KktViolation::CapacityExceeded { .. }
                | KktViolation::AllotmentOutOfRange { .. }
        ));
    }

    #[test]
    fn detects_unbalanced_partial_speeds() {
        // Hand-build a *feasible but suboptimal* solution: two identical
        // jobs on one machine, each running at a different speed.
        let inst = Instance::new(
            vec![Job::new(0, 2.0, 0.0, 2.0), Job::new(1, 2.0, 0.0, 2.0)],
            1,
            2.0,
        )
        .unwrap();
        let mut sol = bal(&inst);
        // Optimal: both at speed 2, each one unit of time. Corrupt into
        // speeds 4 and 4/3 (job 0 gets 0.5, job 1 gets 1.5 time units).
        sol.speeds.set(0, 4.0);
        sol.speeds.set(1, 4.0 / 3.0);
        sol.allotments[0] = vec![(0, 0.5)];
        sol.allotments[1] = vec![(0, 1.5)];
        let err = certify(&inst, &sol, cert_tol()).unwrap_err();
        assert!(
            matches!(err, KktViolation::PartialSpeedsDiffer { .. }),
            "expected P4 violation, got {err}"
        );
    }

    #[test]
    fn detects_underloaded_interval_not_full() {
        // One job, huge window: optimal fills the whole window (P5).
        let inst = Instance::new(vec![Job::new(0, 1.0, 0.0, 4.0)], 2, 2.0).unwrap();
        let mut sol = bal(&inst);
        // Corrupt: run twice as fast using half the window.
        sol.speeds.set(0, 0.5);
        sol.allotments[0] = vec![(0, 2.0)];
        let err = certify(&inst, &sol, cert_tol()).unwrap_err();
        assert!(
            matches!(err, KktViolation::UnderloadedIntervalNotFull { .. }),
            "expected P5 violation, got {err}"
        );
    }

    #[test]
    fn detects_idle_while_slower_runs() {
        // Two intervals, two jobs on one machine. Optimal: job 0 (tight)
        // runs [0,1]; job 1 runs [1,2]. Corrupt: swap part of the usage so
        // the *faster* job idles while the slower one runs.
        let inst = Instance::new(
            vec![Job::new(0, 3.0, 0.0, 1.0), Job::new(1, 1.0, 0.0, 2.0)],
            1,
            2.0,
        )
        .unwrap();
        let sol = bal(&inst);
        certify(&inst, &sol, cert_tol()).unwrap();
        // Job 0 must have speed 3 in [0,1]; job 1 speed 1 in [1,2].
        let mut bad = sol.clone();
        // Make job 1 (slower) grab time in interval 0 while job 0 squeezes
        // into less of interval 0 at higher claimed speed — P2/P3 break.
        bad.speeds.set(0, 6.0);
        bad.allotments[0] = vec![(0, 0.5)];
        bad.speeds.set(1, 2.0 / 3.0);
        bad.allotments[1] = vec![(0, 0.5), (1, 1.0)];
        let err = certify(&inst, &bad, cert_tol()).unwrap_err();
        assert!(
            matches!(
                err,
                KktViolation::PartialSpeedsDiffer { .. }
                    | KktViolation::IdleWhileSlowerRuns { .. }
                    | KktViolation::FullButSlower { .. }
                    | KktViolation::UnderloadedIntervalNotFull { .. }
            ),
            "expected a structural violation, got {err}"
        );
    }
}
