//! The Work Assignment Problem (WAP) and `P|r_j, d_j, pmtn|−` feasibility.
//!
//! Given jobs with *time demands* `p_i`, intervals with lengths `|I_j|` and
//! processor-time capacities `c_j` (initially `m·|I_j|`), decide whether the
//! demands can be packed so that job `i` receives at most `|I_j|` time inside
//! `I_j` (no parallel self-execution) and interval `j` hands out at most
//! `c_j` total time. Classic reduction: the packing exists iff the max flow
//! of the network
//!
//! ```text
//!   source --(p_i)--> job_i --(|I_j|, if alive)--> interval_j --(c_j)--> sink
//! ```
//!
//! equals `Σ p_i`. For the uniform-speed question of the papers, `p_i = w_i/v`.
//!
//! Two interchangeable kernels decide the question (see [`WapKernel`]):
//! the structure-aware **sweep** ([`ssp_maxflow::SweepFlow`]) exploits the
//! consecutive-ones property of elementary intervals and runs in
//! `O(n log n)` per probe, self-certifying its result; the generic **flow**
//! engine ([`FlowNetwork`]) handles everything else and serves as the
//! fallback when the sweep cannot certify maximality. Both expose identical
//! verdicts, canonical cut sides, and cut sums, so every downstream
//! consumer (Newton probes, criticality classification, schedule readback)
//! is kernel-agnostic.

use ssp_maxflow::{EdgeId, FlowNetwork, SweepFlow};
use ssp_model::numeric::Tol;
use ssp_model::{Instance, IntervalSet, Schedule};

use crate::mcnaughton::mcnaughton;

/// Kernel selection policy for [`Wap::solver`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WapKernel {
    /// Sweep when the alive structure has the consecutive-ones property
    /// (it always does for elementary intervals), generic flow otherwise.
    #[default]
    Auto,
    /// Force the sweep kernel (panics at [`Wap::solver`] if the alive sets
    /// are not contiguous runs).
    Sweep,
    /// Force the generic flow engine (used by warm-start experiments and
    /// as the differential referee).
    Flow,
}

/// A WAP instance: the bipartite alive structure plus capacities.
///
/// Job indexing is the caller's (for [`Wap::from_instance`] it is the
/// instance's internal indexing); interval indexing refers to the interval
/// set the structure was built from.
#[derive(Debug, Clone)]
pub struct Wap {
    /// `alive[i]` = interval indices where job `i` may run, ascending.
    alive: Vec<Vec<usize>>,
    /// Interval lengths `|I_j|`.
    lengths: Vec<f64>,
    /// Remaining processor-time capacity `c_j` of each interval.
    capacity: Vec<f64>,
    /// Does every alive set form a contiguous run of interval indices?
    contiguous: bool,
    /// Kernel selection policy for solvers built from this instance.
    kernel: WapKernel,
    /// Learned sweep decline-backoff penalty and the *remaining* skip
    /// window, folded back from finished solvers via
    /// [`Wap::absorb_dispatch`] so per-round solvers (BAL) do not relearn
    /// the dispatch policy from scratch. Carrying the remainder (not a
    /// fresh window) is what guarantees a re-probe at least every
    /// `2^SWEEP_BACKOFF_CAP` solves globally: rounds are often shorter
    /// than the window, and re-arming it each round would lock the sweep
    /// out permanently once the penalty climbed.
    sweep_penalty: u32,
    sweep_skip: u32,
}

/// Decline-backoff cap: after repeated sweep declines the dispatcher skips
/// the sweep attempt for up to `2^CAP` consecutive solves before re-probing
/// it. Whether the greedy certifies is a property of the capacity structure,
/// which drifts slowly across probes, so outcomes are strongly correlated:
/// on decline-heavy instances (crossing windows) the attempt is pure
/// overhead — certified or not, the generic engine must finish the solve —
/// while the cap keeps at least one re-probe per 32 solves so a structure
/// that turns sweep-friendly after peeling is picked back up.
const SWEEP_BACKOFF_CAP: u32 = 5;

/// Solves to skip after the `penalty`-th consecutive failed re-probe.
fn backoff_window(penalty: u32) -> u32 {
    1u32 << penalty.min(SWEEP_BACKOFF_CAP)
}

impl Wap {
    /// Build from explicit parts.
    pub fn new(alive: Vec<Vec<usize>>, lengths: Vec<f64>, capacity: Vec<f64>) -> Self {
        assert_eq!(lengths.len(), capacity.len());
        for ivals in &alive {
            for &j in ivals {
                assert!(j < lengths.len(), "alive interval out of range");
            }
        }
        let contiguous = alive
            .iter()
            .all(|ivals| ivals.windows(2).all(|w| w[1] == w[0] + 1));
        Wap {
            alive,
            lengths,
            capacity,
            contiguous,
            kernel: WapKernel::Auto,
            sweep_penalty: 0,
            sweep_skip: 0,
        }
    }

    /// Build from an instance: intervals are the canonical elementary
    /// intervals, every capacity starts at `m·|I_j|`.
    pub fn from_instance(instance: &Instance) -> (Self, IntervalSet) {
        let ivals = IntervalSet::from_jobs(instance.jobs());
        let lengths: Vec<f64> = (0..ivals.len()).map(|j| ivals.length(j)).collect();
        let capacity: Vec<f64> = lengths
            .iter()
            .map(|l| l * instance.machines() as f64)
            .collect();
        let alive: Vec<Vec<usize>> = (0..instance.len())
            .map(|i| ivals.intervals_of(i).to_vec())
            .collect();
        (Wap::new(alive, lengths, capacity), ivals)
    }

    /// Number of jobs.
    pub fn num_jobs(&self) -> usize {
        self.alive.len()
    }

    /// Number of intervals.
    pub fn num_intervals(&self) -> usize {
        self.lengths.len()
    }

    /// Interval length accessor.
    pub fn length(&self, j: usize) -> f64 {
        self.lengths[j]
    }

    /// Current capacity accessor.
    pub fn capacity(&self, j: usize) -> f64 {
        self.capacity[j]
    }

    /// Kernel selection policy used by [`Wap::solver`].
    pub fn kernel(&self) -> WapKernel {
        self.kernel
    }

    /// Override the kernel selection policy (experiments and differential
    /// referees force [`WapKernel::Flow`]; everything else should leave the
    /// default [`WapKernel::Auto`]).
    pub fn set_kernel(&mut self, kernel: WapKernel) {
        self.kernel = kernel;
    }

    /// Fold a finished solver's dispatch feedback back into the instance:
    /// the next [`Wap::solver`] starts from the learned sweep decline
    /// penalty instead of relearning it. BAL calls this at the end of each
    /// round — the post-peel structure is one capacity update away from the
    /// one the solver just probed, so its decline behaviour carries over.
    /// Purely a scheduling hint: it changes which engine answers a solve,
    /// never the answer (both kernels produce identical verdicts, canonical
    /// cuts, and cut sums).
    pub fn absorb_dispatch(&mut self, solver: &WapSolver) {
        if let KernelImpl::Sweep { penalty, skip, .. } = &solver.kernel {
            self.sweep_penalty = *penalty;
            self.sweep_skip = *skip;
        }
    }

    /// Mutate a capacity (BAL's per-round updates). Values below a relative
    /// epsilon of the interval length snap to exactly zero: repeated
    /// `c - |I_j|` updates on non-dyadic lengths leave ~1e-16 residues, and
    /// an "open" interval with no real capacity would let a later round
    /// allot a full machine that does not exist.
    pub fn set_capacity(&mut self, j: usize, c: f64) {
        assert!(c >= 0.0);
        self.capacity[j] = if c <= 1e-9 * self.lengths[j] { 0.0 } else { c };
    }

    /// Alive intervals of job `i`.
    pub fn alive_of(&self, i: usize) -> &[usize] {
        &self.alive[i]
    }

    /// Intervals of job `i` that still have positive capacity.
    pub fn open_intervals_of(&self, i: usize) -> impl Iterator<Item = usize> + '_ {
        self.alive[i]
            .iter()
            .copied()
            .filter(|&j| self.capacity[j] > 0.0)
    }

    /// Total open (positive-capacity ∩ alive) time of job `i` — the maximum
    /// execution time it can still receive; `w_i / open_time` is its
    /// *effective density*, a lower bound on its final speed.
    pub fn open_time_of(&self, i: usize) -> f64 {
        self.open_intervals_of(i).map(|j| self.lengths[j]).sum()
    }

    /// Build a persistent solver over the *current* capacities. With the
    /// sweep kernel each [`WapSolver::solve`] is an independent
    /// `O(n log n)` pass; with the generic flow engine the feasibility
    /// network is constructed once and each solve re-parameterizes the
    /// source edges and repairs the previous max flow — the hot path of
    /// the BAL bisection, where consecutive probes differ only in a
    /// monotone demand scale.
    ///
    /// Snapshot semantics: later [`Wap::set_capacity`] calls do **not**
    /// propagate into an existing solver; build a fresh one per round.
    /// This holds for *both* kernels, including the sweep kernel's lazy
    /// flow fallback (it is built from the sweep's own frozen snapshot,
    /// never from `self`).
    pub fn solver(&self) -> WapSolver {
        let use_sweep = match self.kernel {
            WapKernel::Flow => false,
            WapKernel::Auto => self.contiguous,
            WapKernel::Sweep => {
                assert!(
                    self.contiguous,
                    "sweep kernel requires contiguous alive sets"
                );
                true
            }
        };
        let _span = ssp_probe::span("wap.solver_build");
        let kernel = if use_sweep {
            let windows: Vec<(u32, u32)> = self
                .alive
                .iter()
                .map(|ivals| match (ivals.first(), ivals.last()) {
                    (Some(&lo), Some(&hi)) => (lo as u32, hi as u32),
                    _ => (1, 0), // alive nowhere
                })
                .collect();
            let edge_cap: Vec<f64> = self
                .lengths
                .iter()
                .zip(&self.capacity)
                .map(|(&len, &c)| if c > 0.0 { len.min(c) } else { 0.0 })
                .collect();
            KernelImpl::Sweep {
                sweep: SweepFlow::new(windows, edge_cap, self.capacity.clone()),
                fallback: None,
                last: Engine::Sweep,
                // A learned penalty starts the solver mid-backoff (the new
                // round's structure is one peel away from the one the sweep
                // kept declining), resuming the *remaining* window rather
                // than re-arming a fresh one — see the field docs.
                skip: self.sweep_skip,
                penalty: self.sweep_penalty,
            }
        } else {
            KernelImpl::Flow(FlowState::build(
                self.alive
                    .iter()
                    .map(|v| Box::new(v.iter().copied()) as Box<dyn Iterator<Item = usize> + '_>),
                &self.lengths,
                &self.capacity,
            ))
        };
        WapSolver {
            kernel,
            num_jobs: self.alive.len(),
            num_intervals: self.lengths.len(),
            value: 0.0,
            demand: 0.0,
        }
    }

    /// Solve the packing with per-job demands `p` (max-flow) and return the
    /// annotated flow for feasibility tests / allotment readback /
    /// residual-reachability queries. One-shot; for repeated queries over
    /// varying demands use [`Wap::solver`].
    pub fn solve(&self, p: &[f64]) -> WapFlow {
        let mut solver = self.solver();
        solver.solve(p);
        WapFlow { solver }
    }
}

/// Which engine produced the last accepted solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Engine {
    Sweep,
    Flow,
}

/// The generic-flow engine state: Horn's network plus the edge handles
/// needed for re-parameterization and readback.
#[derive(Debug, Clone)]
struct FlowState {
    net: FlowNetwork,
    source: usize,
    sink: usize,
    num_jobs: usize,
    num_intervals: usize,
    source_edges: Vec<EdgeId>,
    job_edges: Vec<Vec<(usize, EdgeId)>>,
    sink_edges: Vec<EdgeId>,
    solved: bool,
}

impl FlowState {
    /// Build Horn's network: job edges exist only into open intervals, with
    /// capacity `min(|I_j|, c_j)`.
    fn build<'a>(
        alive: impl Iterator<Item = Box<dyn Iterator<Item = usize> + 'a>>,
        lengths: &[f64],
        capacity: &[f64],
    ) -> FlowState {
        let l = lengths.len();
        let alive: Vec<Box<dyn Iterator<Item = usize> + 'a>> = alive.collect();
        let n = alive.len();
        // Node layout: 0 = source, 1..=n jobs, n+1..=n+l intervals, n+l+1 sink.
        let source = 0usize;
        let sink = n + l + 1;
        let mut net = FlowNetwork::new(n + l + 2);
        let mut source_edges = Vec::with_capacity(n);
        let mut job_edges: Vec<Vec<(usize, EdgeId)>> = vec![Vec::new(); n];
        for i in 0..n {
            // Demands arrive per solve; start the parametric edges at zero.
            source_edges.push(net.add_edge(source, 1 + i, 0.0));
        }
        for (i, ivals) in alive.into_iter().enumerate() {
            for j in ivals {
                if capacity[j] > 0.0 {
                    let cap = lengths[j].min(capacity[j]);
                    let e = net.add_edge(1 + i, 1 + n + j, cap);
                    job_edges[i].push((j, e));
                }
            }
        }
        let mut sink_edges = Vec::with_capacity(l);
        for (j, &c) in capacity.iter().enumerate() {
            sink_edges.push(net.add_edge(1 + n + j, sink, c));
        }
        FlowState {
            net,
            source,
            sink,
            num_jobs: n,
            num_intervals: l,
            source_edges,
            job_edges,
            sink_edges,
            solved: false,
        }
    }

    /// Build from a sweep kernel's frozen structure snapshot — used when
    /// the sweep declines to certify and the dispatcher needs the generic
    /// engine over the *same* capacities the sweep saw (never the possibly
    /// re-parameterized originating [`Wap`]).
    fn build_from_sweep(sweep: &SweepFlow) -> FlowState {
        let l = sweep.num_cells();
        let lengths: Vec<f64> = (0..l).map(|j| sweep.edge_cap(j)).collect();
        let capacity: Vec<f64> = (0..l).map(|j| sweep.cell_cap(j)).collect();
        // `edge_cap` already is `min(|I_j|, c_j)` (0 for closed cells), so
        // passing it as "lengths" reproduces the exact same edge caps.
        FlowState::build(
            (0..sweep.num_jobs()).map(|i| match sweep.window(i) {
                Some((lo, hi)) => Box::new(lo..=hi) as Box<dyn Iterator<Item = usize> + 'static>,
                None => Box::new(std::iter::empty()) as Box<dyn Iterator<Item = usize> + 'static>,
            }),
            &lengths,
            &capacity,
        )
    }

    /// Route the demand vector: cold max-flow on the first call, warm
    /// repair afterwards.
    fn solve(&mut self, p: &[f64]) -> f64 {
        for (i, &demand) in p.iter().enumerate() {
            self.net.set_capacity(self.source_edges[i], demand);
        }
        let value = if self.solved {
            self.net.max_flow_incremental(self.source, self.sink)
        } else {
            self.net.max_flow(self.source, self.sink)
        };
        self.solved = true;
        value
    }

    /// Route the demand vector starting from the sweep's water-filling
    /// allocation: seed every edge with the greedy flow (a valid,
    /// near-maximal flow over the same capacities) and augment only the
    /// undershoot. Each call re-seeds from scratch, so no state leaks
    /// between fallback solves and warm-repair bookkeeping never enters
    /// the picture.
    fn solve_seeded(&mut self, p: &[f64], sweep: &SweepFlow) -> f64 {
        for (i, &demand) in p.iter().enumerate() {
            self.net.set_capacity(self.source_edges[i], demand);
            self.net.set_flow(self.source_edges[i], sweep.routed(i));
        }
        for (i, edges) in self.job_edges.iter().enumerate() {
            // Both lists are ascending in cell index; walk them in lockstep
            // (the sweep allocates only into open cells, which are exactly
            // the cells with edges).
            let mut alloc = sweep.allocs_of(i);
            let mut cur = alloc.next();
            for &(j, e) in edges {
                while let Some((c, _)) = cur {
                    if c < j {
                        cur = alloc.next();
                    } else {
                        break;
                    }
                }
                let f = match cur {
                    Some((c, t)) if c == j => t,
                    _ => 0.0,
                };
                self.net.set_flow(e, f);
            }
        }
        for (j, &e) in self.sink_edges.iter().enumerate() {
            self.net.set_flow(e, sweep.cell_usage(j));
        }
        let value = self.net.resume_max_flow(self.source, self.sink);
        self.solved = true;
        value
    }

    fn allotment(&self, i: usize) -> Vec<(usize, f64)> {
        self.job_edges[i]
            .iter()
            .map(|&(j, e)| (j, self.net.flow(e)))
            .filter(|&(_, t)| t > 0.0)
            .collect()
    }

    fn routed(&self, i: usize) -> f64 {
        self.net.flow(self.source_edges[i])
    }

    fn interval_usage(&self, j: usize) -> f64 {
        self.net.flow(self.sink_edges[j])
    }

    fn cut_speed_bound(&self, works: &[f64]) -> Option<f64> {
        let side = self.net.residual_reachable_from_source();
        let mut w_s = 0.0f64;
        let mut fixed = 0.0f64;
        let mut any_job = false;
        for i in 0..self.num_jobs {
            if !side[1 + i] {
                continue;
            }
            any_job = true;
            w_s += works[i];
            for &(j, e) in &self.job_edges[i] {
                if !side[1 + self.num_jobs + j] {
                    fixed += self.net.capacity(e);
                }
            }
        }
        for j in 0..self.num_intervals {
            if side[1 + self.num_jobs + j] {
                fixed += self.net.capacity(self.sink_edges[j]);
            }
        }
        finish_cut_bound(any_job, w_s, fixed)
    }
}

/// Shared tail of the cut-bound computation (identical across kernels).
fn finish_cut_bound(any_job: bool, w_s: f64, fixed: f64) -> Option<f64> {
    // NaN sums fall through here and are caught by the is_finite gate.
    if !any_job || w_s <= 0.0 || fixed <= 0.0 {
        return None;
    }
    let v = w_s / fixed;
    v.is_finite().then_some(v)
}

/// The engine state behind a [`WapSolver`].
#[derive(Debug, Clone)]
enum KernelImpl {
    /// Fast path: certificate-gated sweep with a lazily-built generic-flow
    /// fallback over the same structure snapshot. `skip`/`penalty` drive
    /// the decline backoff (see [`SWEEP_BACKOFF_CAP`]): while `skip > 0`
    /// solves route straight to the generic engine without attempting the
    /// sweep; a certified attempt resets `penalty`, a declined one doubles
    /// the next window.
    Sweep {
        sweep: SweepFlow,
        fallback: Option<Box<FlowState>>,
        last: Engine,
        skip: u32,
        penalty: u32,
    },
    /// Generic flow only (non-contiguous structure or forced).
    Flow(FlowState),
}

/// A persistent WAP feasibility solver behind a kernel-agnostic API: the
/// sweep kernel re-solves each demand vector from scratch in `O(n log n)`
/// and self-certifies; the generic flow engine warm-starts each solve from
/// the previous flow (see [`FlowNetwork::max_flow_incremental`]). Counters:
/// `wap.flow_calls` (every solve), `wap.fast_path` (certified sweep
/// solves), `wap.fast_fallback` (sweep declined, generic engine re-solved),
/// `wap.sweep_skip` (sweep not attempted: decline backoff routed the solve
/// straight to the generic engine), `wap.sweep_confirm` (sweep certified
/// while the penalty was still draining: the engine answered and the
/// penalty stepped down), `wap.sweep_ops` (sweep kernel work measure). For
/// a sweep-kernel solver every solve lands in exactly one of `fast_path`,
/// `fast_fallback`, `sweep_skip`, or `sweep_confirm`.
///
/// `Clone` forks the whole parametric state (either kernel, flow, value): a
/// clone warm-starts from exactly the state its original held, and solving
/// either side never perturbs the other. The BAL probe ladder leans on this
/// — each candidate speed of a fan-out solves on its own clone of one
/// shared base state, so the probe results are bit-identical at any thread
/// count (a probe can never observe a sibling's flow).
#[derive(Debug, Clone)]
pub struct WapSolver {
    kernel: KernelImpl,
    num_jobs: usize,
    num_intervals: usize,
    value: f64,
    demand: f64,
}

/// The engine holding the last accepted solve's state.
enum Active<'a> {
    Sweep(&'a SweepFlow),
    Flow(&'a FlowState),
}

impl WapSolver {
    /// Route the demand vector `p` and return the achieved flow value.
    pub fn solve(&mut self, p: &[f64]) -> f64 {
        let _span = ssp_probe::span("wap.solve");
        ssp_probe::counter!("wap.flow_calls");
        assert_eq!(p.len(), self.num_jobs, "demand vector length mismatch");
        for &demand in p {
            assert!(
                demand >= 0.0 && demand.is_finite(),
                "demand must be finite/nonnegative"
            );
        }
        self.value = match &mut self.kernel {
            KernelImpl::Flow(fs) => fs.solve(p),
            KernelImpl::Sweep {
                sweep,
                fallback,
                last,
                skip,
                penalty,
            } => {
                if *skip > 0 {
                    // Inside a decline-backoff window: recent attempts kept
                    // declining, making the sweep pure overhead (the generic
                    // engine had to finish those solves anyway). Route
                    // straight to it; its warm repair from the previous
                    // solve is exactly what a forced-Flow solver would do.
                    *skip -= 1;
                    ssp_probe::counter!("wap.sweep_skip");
                    *last = Engine::Flow;
                    let fs = fallback.get_or_insert_with(|| {
                        let _s = ssp_probe::span("wap.fallback_build");
                        Box::new(FlowState::build_from_sweep(sweep))
                    });
                    let _s = ssp_probe::span("wap.fallback_solve");
                    fs.solve(p)
                } else {
                    let v = {
                        let _s = ssp_probe::span("wap.sweep");
                        sweep.solve(p)
                    };
                    ssp_probe::counter!("wap.sweep_ops", sweep.ops());
                    if sweep.certified() && *penalty == 0 {
                        ssp_probe::counter!("wap.fast_path");
                        *last = Engine::Sweep;
                        v
                    } else if sweep.certified() {
                        // Certified, but the penalty is still draining:
                        // answer from the generic engine anyway and only
                        // step the penalty down. An isolated certify inside
                        // a decline-heavy stretch is a net loss for the fast
                        // path — skipping the engine leaves its warm flow
                        // stale, and the *next* engine solve repays the
                        // whole demand gap as extra repair work. Only a
                        // streak of certified attempts (penalty draining to
                        // zero) re-promotes the sweep; the confirmation
                        // solves cost one cheap sweep pass on top of the
                        // engine work that was being paid anyway.
                        ssp_probe::counter!("wap.sweep_confirm");
                        *penalty -= 1;
                        let fs = fallback.get_or_insert_with(|| {
                            let _s = ssp_probe::span("wap.fallback_build");
                            Box::new(FlowState::build_from_sweep(sweep))
                        });
                        *last = Engine::Flow;
                        let _s = ssp_probe::span("wap.fallback_solve");
                        if fs.solved {
                            fs.solve(p)
                        } else {
                            fs.solve_seeded(p, sweep)
                        }
                    } else {
                        // The greedy undershot (a per-cell cap starved a
                        // longer-windowed job); finish the solve exactly on
                        // the frozen structure snapshot, seeded with the
                        // greedy flow so only the undershoot needs
                        // augmenting. Back off the next attempts: decline is
                        // structural, so the following probes would almost
                        // surely decline too.
                        ssp_probe::counter!("wap.fast_fallback");
                        *skip = backoff_window(*penalty);
                        *penalty = penalty.saturating_add(1);
                        let fs = fallback.get_or_insert_with(|| {
                            let _s = ssp_probe::span("wap.fallback_build");
                            Box::new(FlowState::build_from_sweep(sweep))
                        });
                        *last = Engine::Flow;
                        let _s = ssp_probe::span("wap.fallback_solve");
                        if fs.solved {
                            // Warm incremental repair from the previous
                            // fallback flow — consecutive probes differ only
                            // in demand scale, so the repair is cheaper than
                            // re-seeding and re-augmenting the greedy's
                            // structural undershoot from scratch.
                            fs.solve(p)
                        } else {
                            fs.solve_seeded(p, sweep)
                        }
                    }
                }
            }
        };
        self.demand = p.iter().sum();
        self.value
    }

    /// The engine that produced the last accepted solve.
    fn active(&self) -> Active<'_> {
        match &self.kernel {
            KernelImpl::Flow(fs) => Active::Flow(fs),
            KernelImpl::Sweep {
                sweep,
                fallback,
                last,
                ..
            } => match last {
                Engine::Sweep => Active::Sweep(sweep),
                Engine::Flow => {
                    Active::Flow(fallback.as_deref().expect("fallback engine was built"))
                }
            },
        }
    }

    /// Achieved max-flow value of the last [`solve`](WapSolver::solve).
    pub fn value(&self) -> f64 {
        self.value
    }

    /// Total demand `Σ p_i` of the last [`solve`](WapSolver::solve).
    pub fn demand(&self) -> f64 {
        self.demand
    }

    /// Current sweep decline-backoff penalty (0 = the sweep is attempted on
    /// every solve; always 0 for the generic-flow kernel). Exposed for
    /// dispatch-policy tests and [`Wap::absorb_dispatch`] diagnostics.
    pub fn dispatch_penalty(&self) -> u32 {
        match &self.kernel {
            KernelImpl::Sweep { penalty, .. } => *penalty,
            KernelImpl::Flow(_) => 0,
        }
    }

    /// Feasible iff the flow meets the whole demand (tolerantly: max-flow
    /// arithmetic accumulates `O(E·eps)` error).
    pub fn feasible(&self) -> bool {
        self.value >= self.demand - Tol::rel(1e-9).margin(self.demand)
    }

    /// Time allotted to job `i` in each of its open intervals: `(j, t_ij)`,
    /// skipping zero allotments.
    pub fn allotment(&self, i: usize) -> Vec<(usize, f64)> {
        match self.active() {
            Active::Sweep(s) => s.allotment(i),
            Active::Flow(fs) => fs.allotment(i),
        }
    }

    /// Demand actually routed for job `i`.
    pub fn routed(&self, i: usize) -> f64 {
        match self.active() {
            Active::Sweep(s) => s.routed(i),
            Active::Flow(fs) => fs.routed(i),
        }
    }

    /// For each job: is its node residual-reachable from the source? On an
    /// *infeasible* instance just below the critical speed, the reachable
    /// jobs are exactly the **critical jobs** (Lemma 5 of the migratory
    /// analysis). The canonical min cut is invariant across max flows, so
    /// the classification is identical whichever kernel produced the flow
    /// (the sweep only reports sides it has certified).
    pub fn jobs_reachable(&self) -> Vec<bool> {
        match self.active() {
            Active::Sweep(s) => s.job_side().to_vec(),
            Active::Flow(fs) => {
                let side = fs.net.residual_reachable_from_source();
                (0..self.num_jobs).map(|i| side[1 + i]).collect()
            }
        }
    }

    /// For each interval: is its node residual-reachable from the source?
    /// On the same infeasible instance these are the **saturated intervals**
    /// (their `(y_j, sink)` edge lies in the canonical minimum cut).
    pub fn intervals_reachable(&self) -> Vec<bool> {
        match self.active() {
            Active::Sweep(s) => s.cell_side().to_vec(),
            Active::Flow(fs) => {
                let side = fs.net.residual_reachable_from_source();
                (0..self.num_intervals)
                    .map(|j| side[1 + self.num_jobs + j])
                    .collect()
            }
        }
    }

    /// Flow into the sink from interval `j` (total time handed out there).
    pub fn interval_usage(&self, j: usize) -> f64 {
        match self.active() {
            Active::Sweep(s) => s.cell_usage(j),
            Active::Flow(fs) => fs.interval_usage(j),
        }
    }

    /// Cut-derived speed lower bound (the "discrete Newton step" of the BAL
    /// probe ladder), read from the last solve's residual cut. Returns
    /// `None` when the cut carries no information (feasible state — no job
    /// reachable — or a degenerate fixed capacity).
    ///
    /// Derivation: let `S` be the source side of the min cut at an
    /// *infeasible* speed `v` (`works[i] / v` demands). Its capacity splits
    /// into the demand part `Σ_{i∉S} works_i/v` and a `v`-independent part
    /// `F = Σ_{i∈S, j∉S} min(|I_j|, c_j) + Σ_{j∈S} c_j`. Infeasibility at
    /// `v` means the cut is below the total demand, i.e. `W_S/v > F` with
    /// `W_S = Σ_{i∈S} works_i`. At any feasible speed `v'` the *same* cut
    /// must clear the total demand, which rearranges to `v' ≥ W_S/F`. Hence
    /// `W_S/F` is a certified lower bound on the critical speed, and it is
    /// strictly above `v` — each Newton step jumps past everything the
    /// current cut can rule out, so the ladder converges in one step per
    /// distinct cut instead of one bit per bisection probe.
    ///
    /// `works` must hold each job's work (0 for jobs with zero demand in
    /// the last solve). Cut capacities are read from the edge *parameters*
    /// (not the noisy flow values), so the bound is exact up to one
    /// summation — and the summation order is identical across kernels, so
    /// the bound is bit-identical whichever engine produced the cut.
    pub fn cut_speed_bound(&self, works: &[f64]) -> Option<f64> {
        assert_eq!(works.len(), self.num_jobs, "works vector length mismatch");
        match self.active() {
            Active::Flow(fs) => fs.cut_speed_bound(works),
            Active::Sweep(s) => {
                let js = s.job_side();
                let cs = s.cell_side();
                let mut w_s = 0.0f64;
                let mut fixed = 0.0f64;
                let mut any_job = false;
                for (i, &w) in works.iter().enumerate() {
                    if !js[i] {
                        continue;
                    }
                    any_job = true;
                    w_s += w;
                    if let Some((lo, hi)) = s.window(i) {
                        for (j, &cut) in cs.iter().enumerate().take(hi + 1).skip(lo) {
                            let ec = s.edge_cap(j);
                            if ec > 0.0 && !cut {
                                fixed += ec;
                            }
                        }
                    }
                }
                for (j, &side) in cs.iter().enumerate() {
                    if side {
                        fixed += s.cell_cap(j);
                    }
                }
                finish_cut_bound(any_job, w_s, fixed)
            }
        }
    }
}

/// A solved WAP flow with readback accessors (a one-shot
/// [`WapSolver`] frozen after its first solve).
#[derive(Debug)]
pub struct WapFlow {
    solver: WapSolver,
}

impl WapFlow {
    /// Achieved max-flow value.
    pub fn value(&self) -> f64 {
        self.solver.value()
    }

    /// Total demand `Σ p_i`.
    pub fn demand(&self) -> f64 {
        self.solver.demand()
    }

    /// Feasible iff the flow meets the whole demand (tolerantly: max-flow
    /// arithmetic accumulates `O(E·eps)` error).
    pub fn feasible(&self) -> bool {
        self.solver.feasible()
    }

    /// Time allotted to job `i` in each of its open intervals: `(j, t_ij)`,
    /// skipping zero allotments.
    pub fn allotment(&self, i: usize) -> Vec<(usize, f64)> {
        self.solver.allotment(i)
    }

    /// Demand actually routed for job `i`.
    pub fn routed(&self, i: usize) -> f64 {
        self.solver.routed(i)
    }

    /// For each job: is its node residual-reachable from the source? On an
    /// *infeasible* instance just below the critical speed, the reachable
    /// jobs are exactly the **critical jobs** (Lemma 5 of the migratory
    /// analysis).
    pub fn jobs_reachable(&self) -> Vec<bool> {
        self.solver.jobs_reachable()
    }

    /// For each interval: is its node residual-reachable from the source?
    /// On the same infeasible instance these are the **saturated intervals**
    /// (their `(y_j, sink)` edge lies in the canonical minimum cut).
    pub fn intervals_reachable(&self) -> Vec<bool> {
        self.solver.intervals_reachable()
    }

    /// Flow into the sink from interval `j` (total time handed out there).
    pub fn interval_usage(&self, j: usize) -> f64 {
        self.solver.interval_usage(j)
    }
}

/// Explicit `P|r_j, d_j, pmtn|−` schedule: pack jobs with fixed processing
/// times `p` onto the instance's `m` machines. Returns `None` when
/// infeasible. Speeds in the produced schedule are `w_i / p_i`.
pub fn schedule_with_processing_times(instance: &Instance, p: &[f64]) -> Option<Schedule> {
    assert_eq!(p.len(), instance.len());
    let (wap, ivals) = Wap::from_instance(instance);
    let flow = wap.solve(p);
    if !flow.feasible() {
        return None;
    }
    let speeds: Vec<f64> = instance
        .jobs()
        .iter()
        .zip(p)
        .map(|(job, &pi)| job.work / pi)
        .collect();
    let mut per_interval: Vec<Vec<(usize, f64)>> = vec![Vec::new(); ivals.len()];
    for i in 0..instance.len() {
        for (j, t) in flow.allotment(i) {
            per_interval[j].push((i, t));
        }
    }
    let mut schedule = Schedule::new(instance.machines());
    for (j, items) in per_interval.iter().enumerate() {
        if items.is_empty() {
            continue;
        }
        let pieces: Vec<(ssp_model::JobId, f64, f64)> = items
            .iter()
            .map(|&(i, t)| (instance.job(i).id, t, speeds[i]))
            .collect();
        mcnaughton(ivals.bounds(j), instance.machines(), &pieces, &mut schedule);
    }
    Some(schedule)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssp_model::{Instance, Job};

    fn inst(jobs: Vec<Job>, m: usize) -> Instance {
        Instance::new(jobs, m, 2.0).unwrap()
    }

    #[test]
    fn single_job_feasibility_boundary() {
        let instance = inst(vec![Job::new(0, 2.0, 0.0, 2.0)], 1);
        let (wap, _) = Wap::from_instance(&instance);
        assert!(wap.solve(&[2.0]).feasible()); // p = window length
        assert!(!wap.solve(&[2.1]).feasible());
    }

    #[test]
    fn two_jobs_one_machine_share_window() {
        let instance = inst(
            vec![Job::new(0, 1.0, 0.0, 2.0), Job::new(1, 1.0, 0.0, 2.0)],
            1,
        );
        let (wap, _) = Wap::from_instance(&instance);
        assert!(wap.solve(&[1.0, 1.0]).feasible());
        assert!(!wap.solve(&[1.5, 1.0]).feasible());
    }

    #[test]
    fn parallel_self_execution_is_blocked_by_job_interval_caps() {
        // One job, window length 1, two machines: demand 1.5 impossible even
        // though total capacity is 2 (a job can't run on both machines).
        let instance = inst(vec![Job::new(0, 1.0, 0.0, 1.0)], 2);
        let (wap, _) = Wap::from_instance(&instance);
        assert!(wap.solve(&[1.0]).feasible());
        assert!(!wap.solve(&[1.5]).feasible());
    }

    #[test]
    fn migration_enables_otherwise_impossible_packings() {
        // Three jobs, two machines, common window [0,3], demand 2 each:
        // total 6 = 2*3 exactly; feasible only with migration-style splitting.
        let instance = inst(
            vec![
                Job::new(0, 1.0, 0.0, 3.0),
                Job::new(1, 1.0, 0.0, 3.0),
                Job::new(2, 1.0, 0.0, 3.0),
            ],
            2,
        );
        let (wap, _) = Wap::from_instance(&instance);
        assert!(wap.solve(&[2.0, 2.0, 2.0]).feasible());
        assert!(!wap.solve(&[2.0, 2.0, 2.2]).feasible());
    }

    #[test]
    fn allotments_meet_demand_and_caps() {
        let instance = inst(
            vec![
                Job::new(0, 1.0, 0.0, 2.0),
                Job::new(1, 1.0, 1.0, 3.0),
                Job::new(2, 1.0, 0.0, 3.0),
            ],
            2,
        );
        let (wap, ivals) = Wap::from_instance(&instance);
        let p = [1.5, 1.5, 2.0];
        let flow = wap.solve(&p);
        assert!(flow.feasible());
        #[allow(clippy::needless_range_loop)]
        for i in 0..3 {
            let total: f64 = flow.allotment(i).iter().map(|&(_, t)| t).sum();
            assert!((total - p[i]).abs() < 1e-9, "job {i}: {total} vs {}", p[i]);
            for (j, t) in flow.allotment(i) {
                assert!(t <= ivals.length(j) + 1e-9);
            }
        }
        for j in 0..ivals.len() {
            assert!(flow.interval_usage(j) <= 2.0 * ivals.length(j) + 1e-9);
        }
    }

    #[test]
    fn effective_density_with_closed_intervals() {
        let instance = inst(vec![Job::new(0, 2.0, 0.0, 4.0)], 1);
        let (mut wap, ivals) = Wap::from_instance(&instance);
        assert_eq!(ivals.len(), 1);
        assert_eq!(wap.open_time_of(0), 4.0);
        wap.set_capacity(0, 0.0);
        assert_eq!(wap.open_time_of(0), 0.0);
        assert_eq!(wap.open_intervals_of(0).count(), 0);
    }

    #[test]
    fn schedule_with_processing_times_builds_valid_schedule() {
        let jobs = vec![
            Job::new(0, 2.0, 0.0, 2.0),
            Job::new(1, 2.0, 0.0, 2.0),
            Job::new(2, 2.0, 0.0, 2.0),
        ];
        let instance = inst(jobs, 2);
        // Each needs 4/3 time in [0,2]: classic McNaughton-with-migration.
        let p = vec![4.0 / 3.0; 3];
        let s = schedule_with_processing_times(&instance, &p).unwrap();
        let stats = s.validate(&instance, Default::default()).unwrap();
        assert!(
            stats.migrations >= 1,
            "splitting across machines is necessary here"
        );
    }

    #[test]
    fn schedule_with_processing_times_detects_infeasible() {
        let instance = inst(vec![Job::new(0, 1.0, 0.0, 1.0)], 1);
        assert!(schedule_with_processing_times(&instance, &[1.2]).is_none());
    }

    #[test]
    fn reachability_on_infeasible_instance_flags_overloaded_side() {
        // Job 0 tight [0,1], job 1 loose [0,10]; at demand just over the
        // window, job 0's node stays reachable (its source edge can't fill).
        let instance = inst(
            vec![Job::new(0, 1.0, 0.0, 1.0), Job::new(1, 1.0, 0.0, 10.0)],
            1,
        );
        let (wap, _) = Wap::from_instance(&instance);
        let flow = wap.solve(&[1.05, 1.0]);
        assert!(!flow.feasible());
        let jr = flow.jobs_reachable();
        assert!(
            jr[0],
            "the overloaded job must sit on the source side of the cut"
        );
        assert!(!jr[1], "the slack job routes fully and is cut away");
    }

    /// The per-cell-cap starvation structure where the sweep greedy cannot
    /// certify: the dispatcher must fall back to the generic engine and
    /// produce exactly what a forced-Flow solver produces.
    fn starvation_wap() -> Wap {
        Wap::new(
            vec![vec![0, 1], vec![0, 1], vec![0, 1], vec![0, 1, 2]],
            vec![4.0, 3.0, 1.0],
            vec![8.0, 6.0, 0.0],
        )
    }

    #[test]
    fn fast_path_decline_falls_back_to_identical_flow_answers() {
        let wap = starvation_wap();
        let mut auto = wap.solver();
        let mut flow = {
            let mut w = wap.clone();
            w.set_kernel(WapKernel::Flow);
            w.solver()
        };
        let p = [4.0, 6.0, 0.0, 6.0];
        let va = auto.solve(&p);
        let vf = flow.solve(&p);
        // Seeded augmentation and cold Dinic reach (possibly different) max
        // flows; the value is unique up to summation noise, the canonical
        // cut is unique outright.
        assert!(
            (va - vf).abs() <= 1e-9 * vf.max(1.0),
            "fallback {va} must equal pure flow {vf}"
        );
        assert!((va - 14.0).abs() < 1e-9);
        assert!(!auto.feasible());
        assert_eq!(auto.jobs_reachable(), flow.jobs_reachable());
        assert_eq!(auto.intervals_reachable(), flow.intervals_reachable());
        let works = [4.0, 6.0, 0.0, 6.0];
        assert_eq!(auto.cut_speed_bound(&works), flow.cut_speed_bound(&works));
    }

    /// Satellite regression: after a fallback solve, a later certified
    /// sweep solve must report *its own* fresh state (no stale engine or
    /// side sets), and vice versa.
    #[test]
    fn engine_switches_never_serve_stale_state() {
        let wap = starvation_wap();
        let mut s = wap.solver();
        // 1) feasible demands: certified sweep path.
        let p_ok = [2.0, 2.0, 0.0, 2.0];
        assert!((s.solve(&p_ok) - 6.0).abs() < 1e-9);
        assert!(s.feasible());
        assert!(s.jobs_reachable().iter().all(|&b| !b));
        // 2) starvation demands: fallback path, cut appears.
        let p_bad = [4.0, 6.0, 0.0, 6.0];
        s.solve(&p_bad);
        assert!(!s.feasible());
        assert!(s.jobs_reachable().iter().any(|&b| b));
        let routed_total: f64 = (0..4).map(|i| s.routed(i)).sum();
        assert!((routed_total - 14.0).abs() < 1e-9);
        // 3) feasible again, but inside the decline-backoff window: the
        // generic engine answers (fresh state, identical verdict).
        assert_eq!(s.dispatch_penalty(), 1);
        assert!((s.solve(&p_ok) - 6.0).abs() < 1e-9);
        assert!(s.feasible());
        assert!(s.jobs_reachable().iter().all(|&b| !b));
        // 4) window expired: the sweep re-probes and certifies, but the
        // penalty is still draining, so the engine answers this confirmation
        // solve (its warm chain stays intact) and the penalty steps to 0.
        assert!((s.solve(&p_ok) - 6.0).abs() < 1e-9);
        assert_eq!(s.dispatch_penalty(), 0);
        assert!(s.feasible());
        assert!(s.jobs_reachable().iter().all(|&b| !b));
        // 5) penalty drained: the sweep answers outright and reports its own
        // fresh state.
        assert!((s.solve(&p_ok) - 6.0).abs() < 1e-9);
        assert!(s.feasible());
        assert!(s.jobs_reachable().iter().all(|&b| !b));
        let routed_total: f64 = (0..4).map(|i| s.routed(i)).sum();
        assert!((routed_total - 6.0).abs() < 1e-9);
        for (i, &pk) in p_ok.iter().enumerate() {
            let total: f64 = s.allotment(i).iter().map(|&(_, t)| t).sum();
            assert!((total - pk).abs() < 1e-9);
        }
    }

    /// Decline backoff: a declined sweep attempt opens a skip window routed
    /// straight to the generic engine (identical answers), repeated declines
    /// double it, a streak of certified re-probes drains it one step per
    /// certify, and [`Wap::absorb_dispatch`] carries the penalty into fresh
    /// solvers.
    #[test]
    fn decline_backoff_skips_sweep_and_persists_across_solvers() {
        let mut wap = starvation_wap();
        let mut s = wap.solver();
        let p_bad = [4.0, 6.0, 0.0, 6.0];
        let v0 = s.solve(&p_bad); // attempt, decline -> window of 1
        assert_eq!(s.dispatch_penalty(), 1);
        let v1 = s.solve(&p_bad); // skipped: warm generic repair
        assert!((v1 - v0).abs() <= 1e-9 * v0);
        assert!(!s.feasible());
        let v2 = s.solve(&p_bad); // re-probe, decline again -> window of 2
        assert_eq!(s.dispatch_penalty(), 2);
        assert!((v2 - v0).abs() <= 1e-9 * v0);
        // The cut stays canonical on skipped and declined solves alike.
        let works = [4.0, 6.0, 0.0, 6.0];
        let bound = s.cut_speed_bound(&works);
        assert!(bound.is_some());

        // A fresh solver inherits the penalty and the *remaining* window
        // (2 solves, not a re-armed 4): the very first solve skips the
        // sweep yet answers identically.
        wap.absorb_dispatch(&s);
        let mut s2 = wap.solver();
        let v = s2.solve(&p_bad);
        assert_eq!(s2.dispatch_penalty(), 2);
        assert!((v - v0).abs() <= 1e-9 * v0);
        assert_eq!(s2.cut_speed_bound(&works), bound);

        // A certify streak drains the penalty one step at a time (each
        // confirmation solve is still answered by the engine, keeping its
        // warm chain intact); only then does the fast path resume. First,
        // one more skip drains the inherited window.
        let p_ok = [2.0, 2.0, 0.0, 2.0];
        assert!((s2.solve(&p_ok) - 6.0).abs() < 1e-9);
        assert_eq!(s2.dispatch_penalty(), 2);
        assert!((s2.solve(&p_ok) - 6.0).abs() < 1e-9);
        assert_eq!(s2.dispatch_penalty(), 1);
        assert!((s2.solve(&p_ok) - 6.0).abs() < 1e-9);
        assert_eq!(s2.dispatch_penalty(), 0);
        assert!(s2.feasible());
        // Penalty drained: the sweep now answers outright.
        assert!((s2.solve(&p_ok) - 6.0).abs() < 1e-9);
        assert!(s2.feasible());
        assert!(s2.jobs_reachable().iter().all(|&b| !b));
    }

    /// Satellite regression: `Wap::set_capacity` after building one solver
    /// must be visible to the *next* solver on both kernels (snapshot
    /// semantics per solver, fresh snapshot per build).
    #[test]
    fn reparameterized_capacities_reach_fresh_solvers_on_both_kernels() {
        let instance = inst(vec![Job::new(0, 2.0, 0.0, 2.0)], 2);
        let (mut wap, _) = Wap::from_instance(&instance);
        let mut before = wap.solver();
        assert!(before.solve(&[2.0]) >= 2.0 - 1e-12);
        assert!(before.feasible());
        // Close the only interval; a fresh solver must see zero capacity.
        wap.set_capacity(0, 0.0);
        for kernel in [WapKernel::Auto, WapKernel::Sweep, WapKernel::Flow] {
            let mut w = wap.clone();
            w.set_kernel(kernel);
            let mut s = w.solver();
            assert_eq!(s.solve(&[2.0]), 0.0, "{kernel:?} must see closed interval");
            assert!(!s.feasible());
        }
        // The pre-existing solver keeps its snapshot (documented contract).
        assert!(before.solve(&[2.0]) >= 2.0 - 1e-12);
    }

    /// Cloned solvers fork the full dispatch state: solving a clone (even
    /// across an engine switch) never perturbs the original.
    #[test]
    fn clones_fork_kernel_state_independently() {
        let wap = starvation_wap();
        let mut base = wap.solver();
        let p_ok = [2.0, 2.0, 0.0, 2.0];
        base.solve(&p_ok);
        let v0 = base.value();
        let mut probe = base.clone();
        probe.solve(&[4.0, 6.0, 0.0, 6.0]); // forces the clone through fallback
        assert!(!probe.feasible());
        assert_eq!(base.value().to_bits(), v0.to_bits());
        assert!(base.feasible());
        // Identical clones solve identically (ladder determinism).
        let mut a = base.clone();
        let mut b = base.clone();
        assert_eq!(
            a.solve(&[3.0, 3.0, 0.0, 3.0]).to_bits(),
            b.solve(&[3.0, 3.0, 0.0, 3.0]).to_bits()
        );
    }

    /// Forced kernels agree with Auto on elementary-interval instances.
    #[test]
    fn forced_kernels_agree_on_instance_families() {
        let jobs = vec![
            Job::new(0, 3.0, 0.0, 2.0),
            Job::new(1, 1.0, 0.5, 3.5),
            Job::new(2, 2.0, 1.0, 4.0),
            Job::new(3, 1.5, 2.0, 6.0),
            Job::new(4, 2.5, 0.0, 6.0),
        ];
        let instance = inst(jobs, 2);
        let (wap, _) = Wap::from_instance(&instance);
        for v in [0.5f64, 0.9, 1.3, 2.0, 4.0] {
            let p: Vec<f64> = instance.jobs().iter().map(|j| j.work / v).collect();
            let mut results = Vec::new();
            for kernel in [WapKernel::Auto, WapKernel::Sweep, WapKernel::Flow] {
                let mut w = wap.clone();
                w.set_kernel(kernel);
                let mut s = w.solver();
                s.solve(&p);
                results.push((s.feasible(), s.jobs_reachable(), s.intervals_reachable()));
            }
            assert_eq!(results[0], results[1], "auto vs sweep at v={v}");
            assert_eq!(results[0], results[2], "auto vs flow at v={v}");
        }
    }
}
