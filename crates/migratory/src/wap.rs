//! The Work Assignment Problem (WAP) and `P|r_j, d_j, pmtn|−` feasibility.
//!
//! Given jobs with *time demands* `p_i`, intervals with lengths `|I_j|` and
//! processor-time capacities `c_j` (initially `m·|I_j|`), decide whether the
//! demands can be packed so that job `i` receives at most `|I_j|` time inside
//! `I_j` (no parallel self-execution) and interval `j` hands out at most
//! `c_j` total time. Classic reduction: the packing exists iff the max flow
//! of the network
//!
//! ```text
//!   source --(p_i)--> job_i --(|I_j|, if alive)--> interval_j --(c_j)--> sink
//! ```
//!
//! equals `Σ p_i`. For the uniform-speed question of the papers, `p_i = w_i/v`.

use ssp_maxflow::{EdgeId, FlowNetwork};
use ssp_model::numeric::Tol;
use ssp_model::{Instance, IntervalSet, Schedule};

use crate::mcnaughton::mcnaughton;

/// A WAP instance: the bipartite alive structure plus capacities.
///
/// Job indexing is the caller's (for [`Wap::from_instance`] it is the
/// instance's internal indexing); interval indexing refers to the interval
/// set the structure was built from.
#[derive(Debug, Clone)]
pub struct Wap {
    /// `alive[i]` = interval indices where job `i` may run, ascending.
    alive: Vec<Vec<usize>>,
    /// Interval lengths `|I_j|`.
    lengths: Vec<f64>,
    /// Remaining processor-time capacity `c_j` of each interval.
    capacity: Vec<f64>,
}

impl Wap {
    /// Build from explicit parts.
    pub fn new(alive: Vec<Vec<usize>>, lengths: Vec<f64>, capacity: Vec<f64>) -> Self {
        assert_eq!(lengths.len(), capacity.len());
        for ivals in &alive {
            for &j in ivals {
                assert!(j < lengths.len(), "alive interval out of range");
            }
        }
        Wap {
            alive,
            lengths,
            capacity,
        }
    }

    /// Build from an instance: intervals are the canonical elementary
    /// intervals, every capacity starts at `m·|I_j|`.
    pub fn from_instance(instance: &Instance) -> (Self, IntervalSet) {
        let ivals = IntervalSet::from_jobs(instance.jobs());
        let lengths: Vec<f64> = (0..ivals.len()).map(|j| ivals.length(j)).collect();
        let capacity: Vec<f64> = lengths
            .iter()
            .map(|l| l * instance.machines() as f64)
            .collect();
        let alive: Vec<Vec<usize>> = (0..instance.len())
            .map(|i| ivals.intervals_of(i).to_vec())
            .collect();
        (
            Wap {
                alive,
                lengths,
                capacity,
            },
            ivals,
        )
    }

    /// Number of jobs.
    pub fn num_jobs(&self) -> usize {
        self.alive.len()
    }

    /// Number of intervals.
    pub fn num_intervals(&self) -> usize {
        self.lengths.len()
    }

    /// Interval length accessor.
    pub fn length(&self, j: usize) -> f64 {
        self.lengths[j]
    }

    /// Current capacity accessor.
    pub fn capacity(&self, j: usize) -> f64 {
        self.capacity[j]
    }

    /// Mutate a capacity (BAL's per-round updates). Values below a relative
    /// epsilon of the interval length snap to exactly zero: repeated
    /// `c - |I_j|` updates on non-dyadic lengths leave ~1e-16 residues, and
    /// an "open" interval with no real capacity would let a later round
    /// allot a full machine that does not exist.
    pub fn set_capacity(&mut self, j: usize, c: f64) {
        assert!(c >= 0.0);
        self.capacity[j] = if c <= 1e-9 * self.lengths[j] { 0.0 } else { c };
    }

    /// Alive intervals of job `i`.
    pub fn alive_of(&self, i: usize) -> &[usize] {
        &self.alive[i]
    }

    /// Intervals of job `i` that still have positive capacity.
    pub fn open_intervals_of(&self, i: usize) -> impl Iterator<Item = usize> + '_ {
        self.alive[i]
            .iter()
            .copied()
            .filter(|&j| self.capacity[j] > 0.0)
    }

    /// Total open (positive-capacity ∩ alive) time of job `i` — the maximum
    /// execution time it can still receive; `w_i / open_time` is its
    /// *effective density*, a lower bound on its final speed.
    pub fn open_time_of(&self, i: usize) -> f64 {
        self.open_intervals_of(i).map(|j| self.lengths[j]).sum()
    }

    /// Build a persistent, warm-startable solver over the *current*
    /// capacities. The feasibility network is constructed once; each
    /// [`WapSolver::solve`] re-parameterizes the source edges with the new
    /// demand vector and repairs the previous max flow instead of
    /// recomputing it — the hot path of the BAL bisection, where
    /// consecutive probes differ only in a monotone demand scale.
    ///
    /// Snapshot semantics: later [`Wap::set_capacity`] calls do **not**
    /// propagate into an existing solver; build a fresh one per round.
    pub fn solver(&self) -> WapSolver {
        let n = self.alive.len();
        let l = self.lengths.len();
        // Node layout: 0 = source, 1..=n jobs, n+1..=n+l intervals, n+l+1 sink.
        let source = 0usize;
        let sink = n + l + 1;
        let mut net = FlowNetwork::new(n + l + 2);
        let mut source_edges = Vec::with_capacity(n);
        let mut job_edges: Vec<Vec<(usize, EdgeId)>> = vec![Vec::new(); n];
        for i in 0..n {
            // Demands arrive per solve; start the parametric edges at zero.
            source_edges.push(net.add_edge(source, 1 + i, 0.0));
        }
        for (i, ivals) in self.alive.iter().enumerate() {
            for &j in ivals {
                if self.capacity[j] > 0.0 {
                    let cap = self.lengths[j].min(self.capacity[j]);
                    let e = net.add_edge(1 + i, 1 + n + j, cap);
                    job_edges[i].push((j, e));
                }
            }
        }
        let mut sink_edges = Vec::with_capacity(l);
        for j in 0..l {
            sink_edges.push(net.add_edge(1 + n + j, sink, self.capacity[j]));
        }
        WapSolver {
            net,
            source,
            sink,
            num_jobs: n,
            num_intervals: l,
            source_edges,
            job_edges,
            sink_edges,
            value: 0.0,
            demand: 0.0,
            solved: false,
        }
    }

    /// Solve the packing with per-job demands `p` (max-flow) and return the
    /// annotated flow for feasibility tests / allotment readback /
    /// residual-reachability queries. One-shot: builds a fresh network and
    /// solves cold; for repeated queries over varying demands use
    /// [`Wap::solver`].
    pub fn solve(&self, p: &[f64]) -> WapFlow {
        let mut solver = self.solver();
        solver.solve(p);
        WapFlow { solver }
    }
}

/// A persistent WAP feasibility solver: the network is built once, each
/// [`solve`](WapSolver::solve) re-parameterizes the source capacities and
/// warm-starts the max flow from the previous one (see
/// [`FlowNetwork::max_flow_incremental`]).
///
/// `Clone` forks the whole parametric state (network, flow, value): a clone
/// warm-starts from exactly the flow its original held, and solving either
/// side never perturbs the other. The BAL probe ladder leans on this — each
/// candidate speed of a fan-out solves on its own clone of one shared base
/// state, so the probe results are bit-identical at any thread count (a
/// probe can never observe a sibling's flow).
#[derive(Debug, Clone)]
pub struct WapSolver {
    net: FlowNetwork,
    source: usize,
    sink: usize,
    num_jobs: usize,
    num_intervals: usize,
    source_edges: Vec<EdgeId>,
    job_edges: Vec<Vec<(usize, EdgeId)>>,
    sink_edges: Vec<EdgeId>,
    value: f64,
    demand: f64,
    solved: bool,
}

impl WapSolver {
    /// Route the demand vector `p`: cold max-flow on the first call, warm
    /// repair afterwards. Returns the achieved flow value.
    pub fn solve(&mut self, p: &[f64]) -> f64 {
        let _span = ssp_probe::span("wap.solve");
        ssp_probe::counter!("wap.flow_calls");
        assert_eq!(p.len(), self.num_jobs, "demand vector length mismatch");
        for (i, &demand) in p.iter().enumerate() {
            assert!(
                demand >= 0.0 && demand.is_finite(),
                "demand must be finite/nonnegative"
            );
            self.net.set_capacity(self.source_edges[i], demand);
        }
        self.value = if self.solved {
            self.net.max_flow_incremental(self.source, self.sink)
        } else {
            self.net.max_flow(self.source, self.sink)
        };
        self.solved = true;
        self.demand = p.iter().sum();
        self.value
    }

    /// Achieved max-flow value of the last [`solve`](WapSolver::solve).
    pub fn value(&self) -> f64 {
        self.value
    }

    /// Total demand `Σ p_i` of the last [`solve`](WapSolver::solve).
    pub fn demand(&self) -> f64 {
        self.demand
    }

    /// Feasible iff the flow meets the whole demand (tolerantly: max-flow
    /// arithmetic accumulates `O(E·eps)` error).
    pub fn feasible(&self) -> bool {
        self.value >= self.demand - Tol::rel(1e-9).margin(self.demand)
    }

    /// Time allotted to job `i` in each of its open intervals: `(j, t_ij)`,
    /// skipping zero allotments.
    pub fn allotment(&self, i: usize) -> Vec<(usize, f64)> {
        self.job_edges[i]
            .iter()
            .map(|&(j, e)| (j, self.net.flow(e)))
            .filter(|&(_, t)| t > 0.0)
            .collect()
    }

    /// Demand actually routed for job `i`.
    pub fn routed(&self, i: usize) -> f64 {
        self.net.flow(self.source_edges[i])
    }

    /// For each job: is its node residual-reachable from the source? On an
    /// *infeasible* instance just below the critical speed, the reachable
    /// jobs are exactly the **critical jobs** (Lemma 5 of the migratory
    /// analysis). The canonical min cut is invariant across max flows, so
    /// the classification is identical whether the flow was computed cold
    /// or repaired warm.
    pub fn jobs_reachable(&self) -> Vec<bool> {
        let side = self.net.residual_reachable_from_source();
        (0..self.num_jobs).map(|i| side[1 + i]).collect()
    }

    /// For each interval: is its node residual-reachable from the source?
    /// On the same infeasible instance these are the **saturated intervals**
    /// (their `(y_j, sink)` edge lies in the canonical minimum cut).
    pub fn intervals_reachable(&self) -> Vec<bool> {
        let side = self.net.residual_reachable_from_source();
        (0..self.num_intervals)
            .map(|j| side[1 + self.num_jobs + j])
            .collect()
    }

    /// Flow into the sink from interval `j` (total time handed out there).
    pub fn interval_usage(&self, j: usize) -> f64 {
        self.net.flow(self.sink_edges[j])
    }

    /// Cut-derived speed lower bound (the "discrete Newton step" of the BAL
    /// probe ladder), read from the last solve's residual cut. Returns
    /// `None` when the cut carries no information (feasible state — no job
    /// reachable — or a degenerate fixed capacity).
    ///
    /// Derivation: let `S` be the source side of the min cut at an
    /// *infeasible* speed `v` (`works[i] / v` demands). Its capacity splits
    /// into the demand part `Σ_{i∉S} works_i/v` and a `v`-independent part
    /// `F = Σ_{i∈S, j∉S} min(|I_j|, c_j) + Σ_{j∈S} c_j`. Infeasibility at
    /// `v` means the cut is below the total demand, i.e. `W_S/v > F` with
    /// `W_S = Σ_{i∈S} works_i`. At any feasible speed `v'` the *same* cut
    /// must clear the total demand, which rearranges to `v' ≥ W_S/F`. Hence
    /// `W_S/F` is a certified lower bound on the critical speed, and it is
    /// strictly above `v` — each Newton step jumps past everything the
    /// current cut can rule out, so the ladder converges in one step per
    /// distinct cut instead of one bit per bisection probe.
    ///
    /// `works` must hold each job's work (0 for jobs with zero demand in
    /// the last solve). Cut capacities are read from the edge *parameters*
    /// ([`FlowNetwork::capacity`]), not the noisy flow values, so the bound
    /// is exact up to one summation.
    pub fn cut_speed_bound(&self, works: &[f64]) -> Option<f64> {
        assert_eq!(works.len(), self.num_jobs, "works vector length mismatch");
        let side = self.net.residual_reachable_from_source();
        let mut w_s = 0.0f64;
        let mut fixed = 0.0f64;
        let mut any_job = false;
        for i in 0..self.num_jobs {
            if !side[1 + i] {
                continue;
            }
            any_job = true;
            w_s += works[i];
            for &(j, e) in &self.job_edges[i] {
                if !side[1 + self.num_jobs + j] {
                    fixed += self.net.capacity(e);
                }
            }
        }
        for j in 0..self.num_intervals {
            if side[1 + self.num_jobs + j] {
                fixed += self.net.capacity(self.sink_edges[j]);
            }
        }
        // NaN sums fall through here and are caught by the is_finite gate.
        if !any_job || w_s <= 0.0 || fixed <= 0.0 {
            return None;
        }
        let v = w_s / fixed;
        v.is_finite().then_some(v)
    }
}

/// A solved WAP flow with readback accessors (a one-shot
/// [`WapSolver`] frozen after its first solve).
#[derive(Debug)]
pub struct WapFlow {
    solver: WapSolver,
}

impl WapFlow {
    /// Achieved max-flow value.
    pub fn value(&self) -> f64 {
        self.solver.value()
    }

    /// Total demand `Σ p_i`.
    pub fn demand(&self) -> f64 {
        self.solver.demand()
    }

    /// Feasible iff the flow meets the whole demand (tolerantly: max-flow
    /// arithmetic accumulates `O(E·eps)` error).
    pub fn feasible(&self) -> bool {
        self.solver.feasible()
    }

    /// Time allotted to job `i` in each of its open intervals: `(j, t_ij)`,
    /// skipping zero allotments.
    pub fn allotment(&self, i: usize) -> Vec<(usize, f64)> {
        self.solver.allotment(i)
    }

    /// Demand actually routed for job `i`.
    pub fn routed(&self, i: usize) -> f64 {
        self.solver.routed(i)
    }

    /// For each job: is its node residual-reachable from the source? On an
    /// *infeasible* instance just below the critical speed, the reachable
    /// jobs are exactly the **critical jobs** (Lemma 5 of the migratory
    /// analysis).
    pub fn jobs_reachable(&self) -> Vec<bool> {
        self.solver.jobs_reachable()
    }

    /// For each interval: is its node residual-reachable from the source?
    /// On the same infeasible instance these are the **saturated intervals**
    /// (their `(y_j, sink)` edge lies in the canonical minimum cut).
    pub fn intervals_reachable(&self) -> Vec<bool> {
        self.solver.intervals_reachable()
    }

    /// Flow into the sink from interval `j` (total time handed out there).
    pub fn interval_usage(&self, j: usize) -> f64 {
        self.solver.interval_usage(j)
    }
}

/// Explicit `P|r_j, d_j, pmtn|−` schedule: pack jobs with fixed processing
/// times `p` onto the instance's `m` machines. Returns `None` when
/// infeasible. Speeds in the produced schedule are `w_i / p_i`.
pub fn schedule_with_processing_times(instance: &Instance, p: &[f64]) -> Option<Schedule> {
    assert_eq!(p.len(), instance.len());
    let (wap, ivals) = Wap::from_instance(instance);
    let flow = wap.solve(p);
    if !flow.feasible() {
        return None;
    }
    let speeds: Vec<f64> = instance
        .jobs()
        .iter()
        .zip(p)
        .map(|(job, &pi)| job.work / pi)
        .collect();
    let mut per_interval: Vec<Vec<(usize, f64)>> = vec![Vec::new(); ivals.len()];
    for i in 0..instance.len() {
        for (j, t) in flow.allotment(i) {
            per_interval[j].push((i, t));
        }
    }
    let mut schedule = Schedule::new(instance.machines());
    for (j, items) in per_interval.iter().enumerate() {
        if items.is_empty() {
            continue;
        }
        let pieces: Vec<(ssp_model::JobId, f64, f64)> = items
            .iter()
            .map(|&(i, t)| (instance.job(i).id, t, speeds[i]))
            .collect();
        mcnaughton(ivals.bounds(j), instance.machines(), &pieces, &mut schedule);
    }
    Some(schedule)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssp_model::{Instance, Job};

    fn inst(jobs: Vec<Job>, m: usize) -> Instance {
        Instance::new(jobs, m, 2.0).unwrap()
    }

    #[test]
    fn single_job_feasibility_boundary() {
        let instance = inst(vec![Job::new(0, 2.0, 0.0, 2.0)], 1);
        let (wap, _) = Wap::from_instance(&instance);
        assert!(wap.solve(&[2.0]).feasible()); // p = window length
        assert!(!wap.solve(&[2.1]).feasible());
    }

    #[test]
    fn two_jobs_one_machine_share_window() {
        let instance = inst(
            vec![Job::new(0, 1.0, 0.0, 2.0), Job::new(1, 1.0, 0.0, 2.0)],
            1,
        );
        let (wap, _) = Wap::from_instance(&instance);
        assert!(wap.solve(&[1.0, 1.0]).feasible());
        assert!(!wap.solve(&[1.5, 1.0]).feasible());
    }

    #[test]
    fn parallel_self_execution_is_blocked_by_job_interval_caps() {
        // One job, window length 1, two machines: demand 1.5 impossible even
        // though total capacity is 2 (a job can't run on both machines).
        let instance = inst(vec![Job::new(0, 1.0, 0.0, 1.0)], 2);
        let (wap, _) = Wap::from_instance(&instance);
        assert!(wap.solve(&[1.0]).feasible());
        assert!(!wap.solve(&[1.5]).feasible());
    }

    #[test]
    fn migration_enables_otherwise_impossible_packings() {
        // Three jobs, two machines, common window [0,3], demand 2 each:
        // total 6 = 2*3 exactly; feasible only with migration-style splitting.
        let instance = inst(
            vec![
                Job::new(0, 1.0, 0.0, 3.0),
                Job::new(1, 1.0, 0.0, 3.0),
                Job::new(2, 1.0, 0.0, 3.0),
            ],
            2,
        );
        let (wap, _) = Wap::from_instance(&instance);
        assert!(wap.solve(&[2.0, 2.0, 2.0]).feasible());
        assert!(!wap.solve(&[2.0, 2.0, 2.2]).feasible());
    }

    #[test]
    fn allotments_meet_demand_and_caps() {
        let instance = inst(
            vec![
                Job::new(0, 1.0, 0.0, 2.0),
                Job::new(1, 1.0, 1.0, 3.0),
                Job::new(2, 1.0, 0.0, 3.0),
            ],
            2,
        );
        let (wap, ivals) = Wap::from_instance(&instance);
        let p = [1.5, 1.5, 2.0];
        let flow = wap.solve(&p);
        assert!(flow.feasible());
        #[allow(clippy::needless_range_loop)]
        for i in 0..3 {
            let total: f64 = flow.allotment(i).iter().map(|&(_, t)| t).sum();
            assert!((total - p[i]).abs() < 1e-9, "job {i}: {total} vs {}", p[i]);
            for (j, t) in flow.allotment(i) {
                assert!(t <= ivals.length(j) + 1e-9);
            }
        }
        for j in 0..ivals.len() {
            assert!(flow.interval_usage(j) <= 2.0 * ivals.length(j) + 1e-9);
        }
    }

    #[test]
    fn effective_density_with_closed_intervals() {
        let instance = inst(vec![Job::new(0, 2.0, 0.0, 4.0)], 1);
        let (mut wap, ivals) = Wap::from_instance(&instance);
        assert_eq!(ivals.len(), 1);
        assert_eq!(wap.open_time_of(0), 4.0);
        wap.set_capacity(0, 0.0);
        assert_eq!(wap.open_time_of(0), 0.0);
        assert_eq!(wap.open_intervals_of(0).count(), 0);
    }

    #[test]
    fn schedule_with_processing_times_builds_valid_schedule() {
        let jobs = vec![
            Job::new(0, 2.0, 0.0, 2.0),
            Job::new(1, 2.0, 0.0, 2.0),
            Job::new(2, 2.0, 0.0, 2.0),
        ];
        let instance = inst(jobs, 2);
        // Each needs 4/3 time in [0,2]: classic McNaughton-with-migration.
        let p = vec![4.0 / 3.0; 3];
        let s = schedule_with_processing_times(&instance, &p).unwrap();
        let stats = s.validate(&instance, Default::default()).unwrap();
        assert!(
            stats.migrations >= 1,
            "splitting across machines is necessary here"
        );
    }

    #[test]
    fn schedule_with_processing_times_detects_infeasible() {
        let instance = inst(vec![Job::new(0, 1.0, 0.0, 1.0)], 1);
        assert!(schedule_with_processing_times(&instance, &[1.2]).is_none());
    }

    #[test]
    fn reachability_on_infeasible_instance_flags_overloaded_side() {
        // Job 0 tight [0,1], job 1 loose [0,10]; at demand just over the
        // window, job 0's node stays reachable (its source edge can't fill).
        let instance = inst(
            vec![Job::new(0, 1.0, 0.0, 1.0), Job::new(1, 1.0, 0.0, 10.0)],
            1,
        );
        let (wap, _) = Wap::from_instance(&instance);
        let flow = wap.solve(&[1.05, 1.0]);
        assert!(!flow.feasible());
        let jr = flow.jobs_reachable();
        assert!(
            jr[0],
            "the overloaded job must sit on the source side of the cut"
        );
        assert!(!jr[1], "the slack job routes fully and is cut away");
    }
}
