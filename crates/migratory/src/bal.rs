//! BAL — the optimal migratory multiprocessor speed-scaling algorithm.
//!
//! High-level structure (critical-speed peeling):
//!
//! 1. Binary-search the minimum uniform speed `v*` at which the remaining
//!    jobs fit into the remaining per-interval capacities (feasibility =
//!    max-flow on the WAP network).
//! 2. Just below `v*` the instance is infeasible; the canonical minimum cut
//!    of that infeasible network classifies the remaining jobs and intervals:
//!    *critical jobs* (job node residual-reachable from the source) cannot
//!    run slower than `v*`, and *saturated intervals* (interval node
//!    reachable) are completely busy. Moreover every `(critical job,
//!    non-saturated span interval)` edge lies in the cut, i.e. the critical
//!    job occupies that interval **entirely**.
//! 3. Fix the critical jobs at speed `v*` with the structured allotment
//!    (full non-saturated intervals, residue routed into saturated intervals
//!    by a small dedicated flow), zero the saturated intervals' capacities,
//!    subtract one processor (`|I_j|`) per critical job from the others, and
//!    recurse on the remaining jobs.
//!
//! Each round fixes at least one job, so there are at most `n` rounds of
//! `O(log P)` max-flow computations: `O(n · f(n) · log P)` total.
//!
//! The result is returned as speeds **plus** per-interval allotments, from
//! which [`BalSolution::schedule`] builds an explicit schedule (McNaughton
//! wrap-around per interval) and [`crate::kkt::certify`] checks the KKT
//! optimality certificate.

use crate::mcnaughton::mcnaughton;
use crate::wap::{Wap, WapSolver};
use ssp_maxflow::FlowNetwork;
use ssp_model::numeric::{bisect_threshold_budgeted, BINARY_SEARCH_REL_WIDTH};
use ssp_model::par::par_map_mut;
use ssp_model::resource::{Budget, Meter};
use ssp_model::{Instance, IntervalSet, Schedule, SolveError, SpeedAssignment};

/// One peeling round: the critical speed and the jobs fixed at it.
#[derive(Debug, Clone, PartialEq)]
pub struct BalRound {
    /// The critical speed of this round.
    pub speed: f64,
    /// Instance-indices of the jobs fixed in this round.
    pub jobs: Vec<usize>,
    /// Interval indices whose capacity was saturated (zeroed) this round.
    pub saturated: Vec<usize>,
    /// The round's speed-search probe transcript: every feasibility probe
    /// (speed, feasible) in execution order — the upper-bound re-establish
    /// probes followed by the ladder/bisection probes. The transcript is a
    /// pure function of the instance and the [`ProbeStrategy`]; in
    /// particular it is **bit-identical at every thread count** (the
    /// differential wall replays it under pinned widths).
    pub probes: Vec<(f64, bool)>,
}

/// How each round locates its critical speed between the density lower
/// bound and the previous round's (feasible) speed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ProbeStrategy {
    /// Cut-guided probe ladder (the default): every iteration plans a small
    /// deterministic fan-out of candidate speeds — the discrete-Newton bound
    /// read from the last infeasible cut ([`WapSolver::cut_speed_bound`])
    /// plus a geometric splitter while the bracket is wide — and solves
    /// each candidate on its own bitwise copy of one shared warm base state
    /// (per-probe scratch slots refreshed by `clone_from`, fanned out via
    /// [`ssp_model::par::par_map_mut`]). The reduction is
    /// serial in plan order (smallest feasible probe → new upper bound,
    /// largest infeasible probe's slot → new base), so transcripts and
    /// energies are bit-identical at any `SSP_THREADS`. Converges in
    /// roughly one fan-out per distinct cut instead of ~40 bisection probes
    /// per round.
    #[default]
    Ladder,
    /// Plain budgeted bisection
    /// ([`bisect_threshold_budgeted`]): one warm
    /// serial probe per step. Kept as the EXP-23 baseline and as a
    /// cross-check in the differential wall.
    Bisection,
}

/// Output of [`bal`]: optimal constant speeds, the optimal energy, the
/// per-round peeling trace, and per-interval time allotments.
#[derive(Debug, Clone)]
pub struct BalSolution {
    /// Optimal speed per job (instance indexing).
    pub speeds: SpeedAssignment,
    /// Optimal total energy `Σ w_i s_i^(α-1)`.
    pub energy: f64,
    /// Peeling trace, in decreasing-speed order.
    pub rounds: Vec<BalRound>,
    /// `allotments[i]` = `(interval, time)` pairs for job `i` over the
    /// canonical interval set, summing to `w_i / s_i`.
    pub allotments: Vec<Vec<(usize, f64)>>,
    /// The canonical interval decomposition the allotments refer to.
    pub intervals: IntervalSet,
    /// Total number of max-flow computations performed (complexity probe).
    pub flow_computations: usize,
    /// Set when a [`Budget`] ran out mid-peeling (`"iterations"` or
    /// `"time"`). The solution is then still *valid* — the jobs not yet
    /// peeled were fixed at the last known-feasible uniform speed — but its
    /// energy is an upper bound on the optimum rather than the optimum.
    pub budget_exhausted: Option<&'static str>,
}

impl BalSolution {
    /// Materialize an explicit migratory schedule (McNaughton wrap-around in
    /// every elementary interval).
    pub fn schedule(&self, instance: &Instance) -> Schedule {
        let mut per_interval: Vec<Vec<(ssp_model::JobId, f64, f64)>> =
            vec![Vec::new(); self.intervals.len()];
        for (i, allot) in self.allotments.iter().enumerate() {
            for &(j, t) in allot {
                if t > 0.0 {
                    per_interval[j].push((instance.job(i).id, t, self.speeds.get(i)));
                }
            }
        }
        let mut schedule = Schedule::new(instance.machines());
        for (j, pieces) in per_interval.iter().enumerate() {
            if !pieces.is_empty() {
                mcnaughton(
                    self.intervals.bounds(j),
                    instance.machines(),
                    pieces,
                    &mut schedule,
                );
            }
        }
        schedule
    }
}

/// Compute the optimal migratory solution. See the module docs for the
/// algorithm. Panics only on internal invariant violations (the problem is
/// always feasible: speeds are unbounded); use [`try_bal`] for the fallible,
/// budget-aware entry point.
pub fn bal(instance: &Instance) -> BalSolution {
    let (wap, intervals) = Wap::from_instance(instance);
    bal_with_wap(instance, wap, intervals)
}

/// Fallible BAL: every invariant violation becomes a [`SolveError`] instead
/// of a panic, and `budget` caps the number of max-flow feasibility probes /
/// wall-clock time. On budget exhaustion the not-yet-peeled jobs are fixed
/// at the last known-feasible uniform speed, so the returned solution is
/// always valid (check [`BalSolution::budget_exhausted`] for optimality).
pub fn try_bal(instance: &Instance, budget: Budget) -> Result<BalSolution, SolveError> {
    let (wap, intervals) = Wap::from_instance(instance);
    try_bal_with_wap(instance, wap, intervals, budget)
}

/// BAL over a caller-built WAP (custom per-interval capacities — e.g.
/// machine downtime, see [`crate::downtime`]). The WAP's intervals must be
/// (a refinement of) the instance's canonical decomposition and every job
/// must have positive open time, or the peeling loop panics on its
/// invariants. Use [`try_bal_with_wap`] for the fallible variant.
pub fn bal_with_wap(instance: &Instance, wap: Wap, intervals: IntervalSet) -> BalSolution {
    try_bal_with_wap(instance, wap, intervals, Budget::unlimited())
        .expect("BAL failed on what should be a feasible instance")
}

/// Fallible, budget-aware form of [`bal_with_wap`]; see [`try_bal`]. Uses
/// the default [`ProbeStrategy::Ladder`]; use
/// [`try_bal_with_wap_strategy`] to pin the speed-search driver.
pub fn try_bal_with_wap(
    instance: &Instance,
    wap: Wap,
    intervals: IntervalSet,
    budget: Budget,
) -> Result<BalSolution, SolveError> {
    try_bal_with_wap_strategy(instance, wap, intervals, budget, ProbeStrategy::default())
}

/// [`try_bal_with_wap`] with an explicit per-round speed-search
/// [`ProbeStrategy`]. Both strategies produce optimal energies; they differ
/// in probe count and transcript shape (EXP-23 quantifies the gap).
pub fn try_bal_with_wap_strategy(
    instance: &Instance,
    wap: Wap,
    intervals: IntervalSet,
    budget: Budget,
    strategy: ProbeStrategy,
) -> Result<BalSolution, SolveError> {
    let _bal_span = ssp_probe::span("bal");
    let mut meter = budget.meter();
    let n = instance.len();
    let mut wap = wap;
    let mut speeds = vec![0.0f64; n];
    let mut allotments: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
    let mut rounds = Vec::new();
    let mut flow_computations = 0usize;

    if n == 0 {
        return Ok(BalSolution {
            speeds: SpeedAssignment::new(speeds),
            energy: 0.0,
            rounds,
            allotments,
            intervals,
            flow_computations,
            budget_exhausted: None,
        });
    }

    let mut remaining: Vec<usize> = (0..n).collect();
    // Initial upper bound, valid for arbitrary capacities: route each job
    // proportionally to interval lengths over its *open* span. With
    // `open_i = Σ_{open j in span} |I_j|`, the routing is feasible when
    // v >= w_i/open_i (per-job caps) and, per interval,
    // v >= |I_j| · Σ_{alive, open} (w_i/open_i) / c_j (capacity caps).
    let mut hi = {
        let open: Vec<f64> = (0..n).map(|i| wap.open_time_of(i)).collect();
        if let Some(i) = (0..n).find(|&i| open[i] <= 0.0 || open[i].is_nan()) {
            return Err(SolveError::Precondition {
                algorithm: "bal",
                message: format!("job {} has no open capacity at all", instance.job(i).id),
            });
        }
        let mut v = (0..n)
            .map(|i| instance.job(i).work / open[i])
            .fold(0.0f64, f64::max);
        for j in 0..intervals.len() {
            if wap.capacity(j) <= 0.0 {
                continue;
            }
            let dens: f64 = intervals
                .alive(j)
                .iter()
                .map(|&i| instance.job(i).work / open[i])
                .sum();
            v = v.max(intervals.length(j) * dens / wap.capacity(j));
        }
        v * (1.0 + 1e-12)
    };
    if !hi.is_finite() {
        return Err(SolveError::Numeric {
            message: format!("initial speed upper bound is not finite ({hi})"),
        });
    }
    let mut budget_exhausted = None;
    // Per-probe scratch solvers for the ladder fan-outs, owned across
    // rounds: each fan-out refreshes them with `clone_from`, which reuses
    // the adjacency/edge allocations sized by earlier rounds.
    let mut ladder_slots: Vec<WapSolver> = Vec::new();

    while !remaining.is_empty() {
        let _round_span = ssp_probe::span("bal.round");
        ssp_probe::counter!("bal.rounds");
        // Effective densities: job work over its still-open time.
        let mut lo: f64 = 0.0;
        for &i in &remaining {
            let open = wap.open_time_of(i);
            if open <= 0.0 || open.is_nan() {
                return Err(SolveError::Numeric {
                    message: format!(
                        "job {} has no open intervals left — BAL invariant broken",
                        instance.job(i).id
                    ),
                });
            }
            lo = lo.max(instance.job(i).work / open);
        }

        // Build the feasibility network once for this round; every probe
        // below re-parameterizes its source edges and warm-starts the max
        // flow from the previous one (serial probes) or from a clone of the
        // shared base state (ladder fan-outs). Interval capacities change
        // only *between* rounds, so a fresh solver per round both stays
        // exact and resets any accumulated floating-point drift.
        let mut solver = wap.solver();
        let mut pbuf = vec![0.0; n];
        let mut probe_log: Vec<(f64, bool)> = Vec::new();

        // The previous round's speed should be feasible; tolerate boundary
        // noise by nudging upward a few times before growing aggressively.
        // Budget exhaustion cannot abort this loop — without a feasible
        // upper bound there is no best-so-far answer to salvage — but the
        // loop is bounded by the guard either way.
        let mut guard = 0;
        while {
            meter.tick();
            flow_computations += 1;
            let ok = probe_on(instance, &remaining, &mut solver, &mut pbuf, hi);
            probe_log.push((hi, ok));
            !ok
        } {
            hi *= if guard < 4 { 1.0 + 1e-9 } else { 2.0 };
            guard += 1;
            if guard >= 80 {
                return Err(SolveError::Numeric {
                    message: format!(
                        "could not re-establish a feasible upper bound (reached {hi})"
                    ),
                });
            }
        }
        if lo > hi {
            lo = hi; // effective density can slightly exceed hi by tolerance
        }

        // Out of budget: fix everything still open at the known-feasible
        // uniform speed `hi` and stop peeling.
        if meter.exhausted().is_some() {
            fix_remaining_at(
                instance,
                &wap,
                hi,
                &remaining,
                &mut speeds,
                &mut allotments,
                &mut flow_computations,
            )?;
            rounds.push(BalRound {
                speed: hi,
                jobs: remaining.clone(),
                saturated: Vec::new(),
                probes: probe_log,
            });
            budget_exhausted = meter.exhausted();
            break;
        }

        // Locate the critical speed. Either driver ticks the meter once per
        // feasibility probe, so the meter delta is the probe count.
        let meter_before = meter.used();
        let searched = {
            let _bisect_span = ssp_probe::span("bal.bisect");
            match strategy {
                ProbeStrategy::Ladder => ladder_search(
                    instance,
                    &remaining,
                    &mut solver,
                    &mut ladder_slots,
                    lo,
                    hi,
                    &mut meter,
                    &mut flow_computations,
                    &mut probe_log,
                ),
                ProbeStrategy::Bisection => {
                    bisect_threshold_budgeted(lo, hi, BINARY_SEARCH_REL_WIDTH, &mut meter, |v| {
                        flow_computations += 1;
                        let ok = probe_on(instance, &remaining, &mut solver, &mut pbuf, v);
                        probe_log.push((v, ok));
                        ok
                    })
                    .map(|(_, v_hi)| v_hi)
                }
            }
        };
        ssp_probe::counter!("bal.bisect_steps", meter.used() - meter_before);
        ssp_probe::histogram!("bal.bisect.probes", meter.used() - meter_before);
        let v_crit = searched?;
        if meter.exhausted().is_some() {
            // Truncated search: `v_crit` is the feasible end of the bracket.
            fix_remaining_at(
                instance,
                &wap,
                v_crit,
                &remaining,
                &mut speeds,
                &mut allotments,
                &mut flow_computations,
            )?;
            rounds.push(BalRound {
                speed: v_crit,
                jobs: remaining.clone(),
                saturated: Vec::new(),
                probes: probe_log,
            });
            budget_exhausted = meter.exhausted();
            break;
        }
        // Probe strictly below the critical speed for the cut structure. The
        // offset must (a) stay above the *next* critical speed — guaranteed
        // because the bisection bracketed v* within 1e-12 relative — and
        // (b) make the shortfall per overloaded job large compared to the
        // flow engine's epsilon, hence the much coarser 1e-9.
        let probe = v_crit * (1.0 - 1e-9);

        // The classification probe reuses the round's warm solver: the
        // canonical min cut is a property of the network, not of which max
        // flow certifies it, so warm and cold probes classify identically.
        flow_computations += 1;
        for &i in &remaining {
            pbuf[i] = instance.job(i).work / probe;
        }
        solver.solve(&pbuf);
        let job_side = solver.jobs_reachable();
        let ival_side = solver.intervals_reachable();
        // Carry the sweep decline-backoff penalty into the next round's
        // solver: decline is structural and the post-peel network differs
        // by one capacity update, so the learned dispatch policy transfers.
        wap.absorb_dispatch(&solver);

        let mut critical: Vec<usize> = remaining.iter().copied().filter(|&i| job_side[i]).collect();
        if critical.is_empty() {
            // Numerical fallback: the effective-density argmax is certainly
            // critical when the cut degenerates. Keeps progress guaranteed.
            debug_assert!(false, "empty critical set — cut degenerated numerically");
            let &fallback = remaining
                .iter()
                .max_by(|&&a, &&b| {
                    let da = instance.job(a).work / wap.open_time_of(a);
                    let db = instance.job(b).work / wap.open_time_of(b);
                    da.total_cmp(&db)
                })
                .unwrap();
            critical.push(fallback);
        }
        let saturated: Vec<usize> = (0..intervals.len())
            .filter(|&j| wap.capacity(j) > 0.0 && ival_side[j])
            .collect();
        let saturated_set: Vec<bool> = {
            let mut v = vec![false; intervals.len()];
            for &j in &saturated {
                v[j] = true;
            }
            v
        };

        // Structured allotment for the critical jobs: fill non-saturated
        // open span intervals entirely; route the residue into saturated
        // intervals with a small dedicated flow.
        let mut residues: Vec<f64> = Vec::with_capacity(critical.len());
        for &i in &critical {
            let demand = instance.job(i).work / v_crit;
            let mut need = demand;
            let open: Vec<usize> = wap.open_intervals_of(i).collect();
            for &j in open.iter().filter(|&&j| !saturated_set[j]) {
                let t = need.min(intervals.length(j));
                if t > 0.0 {
                    allotments[i].push((j, t));
                    need -= t;
                }
            }
            // Sub-tolerance slivers are probe-offset noise, not real demand
            // (threshold = 10x the probe offset).
            residues.push(if need <= 1e-8 * demand { 0.0 } else { need });
        }
        let demand_scale: f64 = critical
            .iter()
            .map(|&i| instance.job(i).work / v_crit)
            .sum();
        route_residues(
            &critical,
            &residues,
            &saturated,
            &wap,
            &intervals,
            v_crit,
            demand_scale,
            &mut allotments,
            &mut flow_computations,
        )?;
        // The probe's 1e-9 offset makes the cut classification exact only up
        // to that scale; over many jobs the routed totals can fall short of
        // the demands by ~1e-7 relative. Normalize each critical job's
        // allotment to its exact demand (energy-irrelevant; downstream
        // tolerances absorb the matching per-interval overshoot).
        // Allotments are *times*, so the flow engine's absolute noise scales
        // with the interval lengths, not with the demands. When a
        // near-zero-width window drives v_crit so high that every demand is
        // below that noise floor (e.g. ~1e-14 against intervals of length
        // ~1), the relative check alone is unsatisfiable; anchor an absolute
        // slack on the decomposition's total length.
        let horizon: f64 = (0..intervals.len()).map(|j| intervals.length(j)).sum();
        for &i in &critical {
            let need = instance.job(i).work / v_crit;
            let got: f64 = allotments[i].iter().map(|&(_, t)| t).sum();
            // NaN discrepancies must fail, so the comparison stays affirmative.
            let within_tolerance = (got - need).abs() <= 1e-5 * need + 1e-9 * horizon;
            if !within_tolerance {
                return Err(SolveError::Numeric {
                    message: format!(
                        "allotment of job {} off by more than tolerance: {got} vs {need}",
                        instance.job(i).id
                    ),
                });
            }
            if got > 0.0 && got != need {
                let factor = need / got;
                for entry in &mut allotments[i] {
                    // Clamp at the interval length: the scaling may push a
                    // full interval over by ~1e-7 relative to the *demand*,
                    // which can exceed per-interval tolerances on short
                    // intervals. The clamped sliver is noise-sized and stays
                    // far below the conservation tolerance.
                    entry.1 = (entry.1 * factor).min(intervals.length(entry.0));
                }
            }
        }

        // Capacity updates: zero saturated intervals; one processor per
        // critical job elsewhere.
        for &j in &saturated {
            wap.set_capacity(j, 0.0);
        }
        for &i in &critical {
            for j in intervals.intervals_of(i).to_vec() {
                if wap.capacity(j) > 0.0 && !saturated_set[j] {
                    let c = wap.capacity(j) - intervals.length(j);
                    debug_assert!(
                        c >= -1e-6 * intervals.length(j),
                        "critical job filled interval {j} lacking a full machine: \
                         capacity {} vs length {}",
                        wap.capacity(j),
                        intervals.length(j)
                    );
                    wap.set_capacity(j, c.max(0.0));
                }
            }
        }

        for &i in &critical {
            speeds[i] = v_crit;
        }
        ssp_probe::counter!("bal.critical_jobs", critical.len() as u64);
        ssp_probe::counter!("bal.saturated_intervals", saturated.len() as u64);
        remaining.retain(|i| !critical.contains(i));
        rounds.push(BalRound {
            speed: v_crit,
            jobs: critical,
            saturated,
            probes: probe_log,
        });
        hi = v_crit;
    }

    ssp_probe::counter!("bal.flow_calls", flow_computations as u64);
    if budget_exhausted.is_some() {
        ssp_probe::counter!("bal.budget_exhausted");
    }
    let assignment = SpeedAssignment::new(speeds);
    let energy = assignment.energy(instance);
    Ok(BalSolution {
        speeds: assignment,
        energy,
        rounds,
        allotments,
        intervals,
        flow_computations,
        budget_exhausted,
    })
}

/// One warm feasibility probe at uniform speed `v` on `solver` (demands
/// `w_i / v` for the remaining jobs, 0 elsewhere).
fn probe_on(
    instance: &Instance,
    remaining: &[usize],
    solver: &mut WapSolver,
    pbuf: &mut [f64],
    v: f64,
) -> bool {
    for &i in remaining {
        pbuf[i] = instance.job(i).work / v;
    }
    solver.solve(pbuf);
    solver.feasible()
}

/// The cut-guided probe ladder: locate the round's critical speed inside
/// `(lo, hi]` (with `hi` already probed feasible on `base`).
///
/// Every iteration plans a deterministic fan-out of candidate speeds from
/// the current bracket and cut state alone — never from the thread count:
///
/// * the discrete-Newton bound [`WapSolver::cut_speed_bound`] of the last
///   infeasible base state (a certified lower bound on the critical speed,
///   strictly above the state's own speed), and
/// * a geometric splitter toward `hi` (two geometric trisection points
///   while no cut exists yet), which bounds the iteration count even when
///   the Newton bound stalls.
///
/// A single-candidate plan probes the warm base in place (a one-probe
/// fan-out is serial at every width, so no copy is needed for
/// thread-invariance). Wider plans solve each candidate on its **own copy
/// of the same base state** — also at width 1, so a serial run replays
/// exactly what any parallel run computes (warm-repairing probes
/// sequentially would let one probe's final flow perturb the next result
/// near the feasibility boundary). The copies live in `slots`, per-probe
/// scratch solvers owned
/// by the round driver and refreshed with `clone_from` each fan-out:
/// `Vec::clone_from` reuses the adjacency/edge allocations already sized by
/// an earlier fan-out, so after warm-up a probe costs no heap traffic on
/// top of the flow work itself. Slot state after the refresh is bitwise
/// equal to `base`, so which slot (and which worker thread, under
/// [`par_map_mut`]'s chunk partition) runs a probe cannot change its
/// result. The reduction is serial in plan order: every smallest feasible
/// probe lowers `hi`, the largest infeasible probe's slot is copied back
/// into the base (its cut feeds the next Newton step). The ladder
/// terminates when the bracket closes below [`BINARY_SEARCH_REL_WIDTH`] or
/// when the Newton bound certifies `hi` itself; on budget exhaustion it
/// returns the best feasible speed so far with `meter.exhausted()` set, the
/// same salvage contract as [`bisect_threshold_budgeted`].
///
/// `base` is left holding the last adopted infeasible state (or the round's
/// initial state if every probe was feasible); the caller's classification
/// probe warm-starts from it deterministically.
#[allow(clippy::too_many_arguments)]
fn ladder_search(
    instance: &Instance,
    remaining: &[usize],
    base: &mut WapSolver,
    slots: &mut Vec<WapSolver>,
    lo: f64,
    hi: f64,
    meter: &mut Meter,
    flow_computations: &mut usize,
    probe_log: &mut Vec<(f64, bool)>,
) -> Result<f64, SolveError> {
    if !(lo.is_finite() && hi.is_finite()) || lo > hi {
        return Err(SolveError::Numeric {
            message: format!("ladder bracket [{lo}, {hi}] is not a finite interval"),
        });
    }
    let rel = BINARY_SEARCH_REL_WIDTH;
    let mut v_lo = lo;
    let mut v_hi = hi;
    // Does `base` hold an infeasible solve whose cut is worth reading?
    let mut base_infeasible = false;
    let mut works = vec![0.0f64; instance.len()];
    for &i in remaining {
        works[i] = instance.job(i).work;
    }

    // Each iteration either returns or strictly shrinks the bracket (the
    // geometric splitter alone closes it in O(log log-ratio / rel)
    // iterations), so this bound is a pure backstop.
    for _ in 0..10_000 {
        if v_hi - v_lo <= rel * v_hi.abs().max(1e-300) {
            return Ok(v_hi);
        }

        // Plan the fan-out (ascending speeds).
        let newton = if base_infeasible {
            base.cut_speed_bound(&works)
        } else {
            None
        };
        if let Some(vn) = newton {
            if vn >= v_hi * (1.0 - rel) {
                // The cut certifies critical speed >= vn ≈ v_hi, and v_hi
                // is already probed feasible: converged without a probe.
                return Ok(v_hi);
            }
        }
        let mut plan: Vec<f64> = Vec::with_capacity(2);
        match newton {
            Some(vn) if vn > v_lo => {
                plan.push(vn);
                // Pair the Newton bound with a geometric splitter only
                // while the bracket is still wide: once vn is within 2x of
                // v_hi the Newton steps converge superlinearly on their own
                // and the splitter would mostly buy probes, not rounds.
                if v_hi > 2.0 * vn {
                    let g = (vn * v_hi).sqrt();
                    if g.is_finite() && g > vn && g < v_hi {
                        plan.push(g);
                    }
                }
            }
            _ if !base_infeasible && v_lo > 0.0 => {
                // Opening probe: the density lower bound alone. On peel
                // rounds where the previous critical job pinned the speed
                // it *is* the critical speed, ending the round in a single
                // probe (mirroring bisection's early exit); when it is
                // infeasible instead, its cut seeds the Newton steps.
                plan.push(v_lo);
            }
            _ => {
                // Infeasible base but no usable cut bound: fall back to a
                // geometric splitter so the bracket still shrinks.
                if v_lo > 0.0 {
                    let g = (v_lo * v_hi).sqrt();
                    if g.is_finite() && g > v_lo && g < v_hi {
                        plan.push(g);
                    }
                }
            }
        }
        if plan.is_empty() {
            let mid = 0.5 * (v_lo + v_hi);
            if !(mid > v_lo && mid < v_hi) {
                return Ok(v_hi); // f64 exhausted
            }
            plan.push(mid);
        }

        // Budget: charge one tick per planned probe *before* launching, so
        // the charge is thread-invariant; truncate the plan to what the
        // budget still covers.
        let mut allowed = 0usize;
        for _ in 0..plan.len() {
            if !meter.tick() {
                break;
            }
            allowed += 1;
        }
        plan.truncate(allowed);
        if plan.is_empty() {
            return Ok(v_hi); // exhausted: salvage the feasible end
        }
        ssp_probe::counter!("bal.par_probes", plan.len() as u64);
        ssp_probe::histogram!("bal.ladder.fanout", plan.len() as u64);

        // Single-candidate plans (the dominant shape: the opening density
        // probe, or a lone Newton step once the bracket narrows) probe the
        // warm base directly — no copy, no fan-out. A one-probe "fan-out"
        // is serial at every width, so transcripts stay thread-invariant,
        // and the round costs exactly one warm incremental solve.
        if plan.len() == 1 {
            let v = plan[0];
            let mut p = vec![0.0f64; works.len()];
            for (pi, &w) in p.iter_mut().zip(&works) {
                if w > 0.0 {
                    *pi = w / v;
                }
            }
            base.solve(&p);
            let ok = base.feasible();
            *flow_computations += 1;
            probe_log.push((v, ok));
            if ok {
                v_hi = v_hi.min(v);
                // The probe overwrote the base with a feasible state; its
                // residual cut no longer certifies anything.
                base_infeasible = false;
            } else {
                base_infeasible = true;
                if v >= v_lo {
                    v_lo = v;
                }
            }
            if v_lo > v_hi {
                return Ok(v_hi); // tolerance fringe, as below
            }
            if meter.exhausted().is_some() {
                return Ok(v_hi);
            }
            continue;
        }

        // Fan out: refresh one scratch slot per probe to a bitwise copy of
        // the base (`clone_from` reuses each slot's allocations after the
        // first fan-out) and solve the slots in parallel.
        for k in 0..plan.len() {
            if k < slots.len() {
                slots[k].clone_from(base);
            } else {
                slots.push(base.clone());
            }
        }
        let works_ref: &[f64] = &works;
        let mut items: Vec<(f64, &mut WapSolver)> = plan
            .iter()
            .copied()
            .zip(slots[..plan.len()].iter_mut())
            .collect();
        let results: Vec<(f64, bool)> = par_map_mut(&mut items, |(v, s)| {
            let mut p = vec![0.0f64; works_ref.len()];
            for (pi, &w) in p.iter_mut().zip(works_ref) {
                if w > 0.0 {
                    *pi = w / *v;
                }
            }
            s.solve(&p);
            (*v, s.feasible())
        });
        drop(items);
        *flow_computations += results.len();

        // Serial reduction in plan order.
        let mut adopt: Option<usize> = None;
        for (k, &(v, ok)) in results.iter().enumerate() {
            probe_log.push((v, ok));
            if ok {
                v_hi = v_hi.min(v);
            } else if v >= v_lo {
                // `>=`: an infeasible probe at exactly `v_lo` (the density
                // bound) does not move the bracket but its cut seeds the
                // Newton steps.
                v_lo = v;
                adopt = Some(k);
            }
        }
        if let Some(k) = adopt {
            base.clone_from(&slots[k]);
            base_infeasible = true;
        }
        if v_lo > v_hi {
            // Tolerance fringe: an infeasible probe above a feasible one.
            // Both sit within the feasibility tolerance of the true
            // critical speed; the feasible end is the answer.
            return Ok(v_hi);
        }
        if meter.exhausted().is_some() {
            return Ok(v_hi);
        }
    }
    Err(SolveError::Numeric {
        message: "probe ladder failed to converge".to_string(),
    })
}

/// Budget-exhaustion fallback: fix every job in `remaining` at the
/// known-feasible uniform speed `v`, reading the per-interval allotments
/// back from one last feasibility flow. The result is a valid schedule for
/// those jobs (merely suboptimal).
fn fix_remaining_at(
    instance: &Instance,
    wap: &Wap,
    v: f64,
    remaining: &[usize],
    speeds: &mut [f64],
    allotments: &mut [Vec<(usize, f64)>],
    flow_computations: &mut usize,
) -> Result<(), SolveError> {
    let mut p = vec![0.0; instance.len()];
    for &i in remaining {
        p[i] = instance.job(i).work / v;
    }
    *flow_computations += 1;
    let flow = wap.solve(&p);
    if !flow.feasible() {
        return Err(SolveError::Numeric {
            message: format!("budget fallback speed {v} unexpectedly infeasible"),
        });
    }
    for &i in remaining {
        speeds[i] = v;
        let mut entries = flow.allotment(i);
        // Normalize engine-epsilon shortfalls to the exact demand.
        let got: f64 = entries.iter().map(|&(_, t)| t).sum();
        if got > 0.0 && got != p[i] {
            let factor = p[i] / got;
            for e in &mut entries {
                e.1 *= factor;
            }
        }
        allotments[i] = entries;
    }
    Ok(())
}

/// Route the critical jobs' residual demands into the saturated intervals
/// (a bipartite max-flow). Feasible by the structure theorem up to the
/// probe-offset noise; shortfalls beyond the jobs' *total* demand scale are
/// a numeric failure (smaller ones are repaired by the per-job
/// normalization in `bal`).
#[allow(clippy::too_many_arguments)]
fn route_residues(
    critical: &[usize],
    residues: &[f64],
    saturated: &[usize],
    wap: &Wap,
    intervals: &IntervalSet,
    v_crit: f64,
    demand_scale: f64,
    allotments: &mut [Vec<(usize, f64)>],
    flow_computations: &mut usize,
) -> Result<(), SolveError> {
    let total_residue: f64 = residues.iter().sum();
    if total_residue <= 0.0 {
        return Ok(());
    }
    let k = critical.len();
    let l = saturated.len();
    // Node layout: 0 source, 1..=k criticals, k+1..=k+l intervals, k+l+1 sink.
    let mut net = FlowNetwork::new(k + l + 2);
    let ival_pos: std::collections::HashMap<usize, usize> = saturated
        .iter()
        .enumerate()
        .map(|(pos, &j)| (j, pos))
        .collect();
    let mut edge_of: Vec<Vec<(usize, ssp_maxflow::EdgeId)>> = vec![Vec::new(); k];
    for (c, (&i, &res)) in critical.iter().zip(residues).enumerate() {
        net.add_edge(0, 1 + c, res);
        for j in wap.open_intervals_of(i) {
            if let Some(&pos) = ival_pos.get(&j) {
                let e = net.add_edge(1 + c, 1 + k + pos, intervals.length(j));
                edge_of[c].push((j, e));
            }
        }
    }
    for (pos, &j) in saturated.iter().enumerate() {
        net.add_edge(1 + k + pos, k + l + 1, wap.capacity(j));
    }
    *flow_computations += 1;
    let routed = net.max_flow(0, k + l + 1);
    // Scale the shortfall tolerance by the critical jobs' total demand: the
    // residues themselves can be arbitrarily small, but the probe-offset
    // noise they inherit is proportional to the demands.
    let routed_enough = routed >= total_residue - 1e-5 * demand_scale - 1e-12;
    if !routed_enough {
        return Err(SolveError::Numeric {
            message: format!(
                "residue routing incomplete: {routed} of {total_residue} at speed {v_crit}"
            ),
        });
    }
    for (c, &i) in critical.iter().enumerate() {
        for &(j, e) in &edge_of[c] {
            let t = net.flow(e);
            if t > 0.0 {
                allotments[i].push((j, t));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssp_model::{Instance, Job};
    use ssp_single::yds::yds;

    fn inst(jobs: Vec<Job>, m: usize, alpha: f64) -> Instance {
        Instance::new(jobs, m, alpha).unwrap()
    }

    #[test]
    fn empty_instance() {
        let sol = bal(&inst(vec![], 3, 2.0));
        assert_eq!(sol.energy, 0.0);
        assert!(sol.rounds.is_empty());
    }

    #[test]
    fn single_job_runs_at_density() {
        let sol = bal(&inst(vec![Job::new(0, 3.0, 1.0, 4.0)], 2, 2.0));
        assert!((sol.speeds.get(0) - 1.0).abs() < 1e-9);
        assert!((sol.energy - 3.0).abs() < 1e-9);
    }

    #[test]
    fn m1_equals_yds_on_small_cases() {
        let cases: Vec<Vec<Job>> = vec![
            vec![Job::new(0, 2.0, 0.0, 4.0), Job::new(1, 2.0, 1.0, 2.0)],
            vec![
                Job::new(0, 1.0, 0.0, 2.0),
                Job::new(1, 1.5, 0.5, 2.5),
                Job::new(2, 0.5, 1.0, 4.0),
            ],
            vec![Job::new(0, 1.0, 0.0, 1.0), Job::new(1, 1.0, 0.0, 1.0)],
        ];
        for jobs in cases {
            for alpha in [1.5, 2.0, 3.0] {
                let e_yds = yds(&jobs, alpha).energy;
                let e_bal = bal(&inst(jobs.clone(), 1, alpha)).energy;
                assert!(
                    (e_yds - e_bal).abs() <= 1e-6 * e_yds.max(1.0),
                    "m=1 mismatch: yds {e_yds} vs bal {e_bal} (alpha {alpha})"
                );
            }
        }
    }

    #[test]
    fn common_window_closed_form() {
        // n equal jobs (w, window [0,T]) on m machines:
        // uniform speed max(w/T, n*w/(m*T)).
        for (n, m, w, t) in [
            (3usize, 2usize, 2.0, 4.0),
            (5, 2, 1.0, 2.0),
            (2, 4, 3.0, 3.0),
        ] {
            let jobs: Vec<Job> = (0..n).map(|i| Job::new(i as u32, w, 0.0, t)).collect();
            let alpha = 2.5;
            let sol = bal(&inst(jobs, m, alpha));
            let expect_speed = (w / t).max(n as f64 * w / (m as f64 * t));
            for i in 0..n {
                assert!(
                    (sol.speeds.get(i) - expect_speed).abs() < 1e-8,
                    "speed {} vs {}",
                    sol.speeds.get(i),
                    expect_speed
                );
            }
            let expect_energy = n as f64 * w * expect_speed.powf(alpha - 1.0);
            assert!((sol.energy - expect_energy).abs() < 1e-6 * expect_energy);
        }
    }

    #[test]
    fn two_rounds_with_distinct_speeds() {
        // A tight job forces a high critical speed; a loose one settles lower.
        let jobs = vec![Job::new(0, 4.0, 0.0, 1.0), Job::new(1, 1.0, 0.0, 10.0)];
        let sol = bal(&inst(jobs, 2, 2.0));
        assert_eq!(sol.rounds.len(), 2);
        assert!((sol.speeds.get(0) - 4.0).abs() < 1e-8);
        assert!((sol.speeds.get(1) - 0.1).abs() < 1e-8);
        assert!(sol.rounds[0].speed > sol.rounds[1].speed);
    }

    #[test]
    fn schedule_materializes_and_validates() {
        let jobs = vec![
            Job::new(0, 3.0, 0.0, 2.0),
            Job::new(1, 2.0, 0.0, 3.0),
            Job::new(2, 2.0, 1.0, 4.0),
            Job::new(3, 1.0, 2.0, 5.0),
            Job::new(4, 4.0, 0.0, 5.0),
        ];
        let instance = inst(jobs, 2, 2.0);
        let sol = bal(&instance);
        let schedule = sol.schedule(&instance);
        let stats = schedule.validate(&instance, Default::default()).unwrap();
        assert!(
            (stats.energy - sol.energy).abs() <= 1e-6 * sol.energy,
            "schedule energy {} vs objective {}",
            stats.energy,
            sol.energy
        );
    }

    #[test]
    fn more_machines_never_increase_energy() {
        let jobs = vec![
            Job::new(0, 2.0, 0.0, 2.0),
            Job::new(1, 2.0, 0.0, 2.0),
            Job::new(2, 2.0, 0.5, 3.0),
            Job::new(3, 1.0, 1.0, 4.0),
        ];
        let mut prev = f64::INFINITY;
        for m in 1..=4 {
            let e = bal(&inst(jobs.clone(), m, 2.3)).energy;
            assert!(e <= prev * (1.0 + 1e-9), "m={m}: {e} > previous {prev}");
            prev = e;
        }
    }

    #[test]
    fn saturation_structure_is_reported() {
        // Two machines fully saturated by four tight jobs.
        let jobs = vec![
            Job::new(0, 2.0, 0.0, 1.0),
            Job::new(1, 2.0, 0.0, 1.0),
            Job::new(2, 2.0, 0.0, 1.0),
            Job::new(3, 2.0, 0.0, 1.0),
        ];
        let instance = inst(jobs, 2, 2.0);
        let sol = bal(&instance);
        // Everyone at speed 4 (total work 8 over 2 processor-units of time).
        for i in 0..4 {
            assert!((sol.speeds.get(i) - 4.0).abs() < 1e-8);
        }
        assert_eq!(sol.rounds.len(), 1);
    }

    #[test]
    fn flow_computation_count_is_reported() {
        let jobs = vec![Job::new(0, 1.0, 0.0, 1.0), Job::new(1, 1.0, 0.0, 4.0)];
        let sol = bal(&inst(jobs, 1, 2.0));
        assert!(sol.flow_computations > 0);
    }

    #[test]
    fn unlimited_budget_matches_plain_bal() {
        let jobs = vec![
            Job::new(0, 3.0, 0.0, 2.0),
            Job::new(1, 2.0, 0.0, 3.0),
            Job::new(2, 2.0, 1.0, 4.0),
            Job::new(3, 1.0, 2.0, 5.0),
        ];
        let instance = inst(jobs, 2, 2.0);
        let plain = bal(&instance);
        let budgeted = try_bal(&instance, Budget::unlimited()).unwrap();
        assert_eq!(budgeted.budget_exhausted, None);
        assert!((budgeted.energy - plain.energy).abs() <= 1e-9 * plain.energy);
    }

    #[test]
    fn exhausted_budget_still_yields_a_valid_schedule() {
        // Spread windows force several peeling rounds; a tiny iteration
        // budget cannot finish them.
        let jobs: Vec<Job> = (0..8)
            .map(|i| {
                Job::new(
                    i,
                    1.0 + i as f64 * 0.5,
                    i as f64 * 0.3,
                    i as f64 * 0.3 + 1.0 + i as f64,
                )
            })
            .collect();
        let instance = inst(jobs, 2, 2.0);
        let optimal = bal(&instance).energy;
        let sol = try_bal(&instance, Budget::iterations(2)).unwrap();
        assert_eq!(sol.budget_exhausted, Some("iterations"));
        // Valid: the explicit schedule passes the full validator.
        let schedule = sol.schedule(&instance);
        let stats = schedule.validate(&instance, Default::default()).unwrap();
        assert!((stats.energy - sol.energy).abs() <= 1e-6 * sol.energy);
        // Suboptimal but bounded below by the optimum.
        assert!(
            sol.energy >= optimal * (1.0 - 1e-9),
            "capped run beat the optimum"
        );
    }

    #[test]
    fn generous_iteration_budget_reaches_the_optimum() {
        let jobs = vec![Job::new(0, 4.0, 0.0, 1.0), Job::new(1, 1.0, 0.0, 10.0)];
        let instance = inst(jobs, 2, 2.0);
        let sol = try_bal(&instance, Budget::iterations(100_000)).unwrap();
        assert_eq!(sol.budget_exhausted, None);
        assert!((sol.energy - bal(&instance).energy).abs() <= 1e-9);
    }
}
