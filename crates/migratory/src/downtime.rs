//! Machine downtime (maintenance windows).
//!
//! Real clusters drain machines for maintenance; the paper's model assumes
//! permanent availability. The WAP capacity machinery absorbs downtime
//! naturally: downtime boundaries become extra interval breakpoints, and an
//! interval's processor-time capacity drops from `m·|I_j|` to
//! `(m − down_j)·|I_j|` where `down_j` counts machines down throughout it.
//! BAL then runs unchanged over the custom capacities
//! ([`crate::bal::bal_with_wap`]).
//!
//! Schedule assembly maps McNaughton's logical machines onto the *up*
//! machines of each interval, so the emitted schedule never touches a
//! machine during its maintenance window.
//!
//! Caveat: the KKT certificate of [`crate::kkt`] encodes full availability
//! (its property 5 assumes `m` processors everywhere) and does not apply
//! under downtime; tests instead verify feasibility, work conservation,
//! downtime avoidance, and monotonicity (downtime never reduces energy).

use crate::bal::{bal_with_wap, BalSolution};
use crate::mcnaughton::mcnaughton;
use crate::wap::Wap;
use ssp_model::{Instance, IntervalSet, Schedule, Segment};

/// One maintenance window: `machine` is unavailable during `[start, end]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Downtime {
    /// Machine index in `0..m`.
    pub machine: usize,
    /// Window start.
    pub start: f64,
    /// Window end (`> start`).
    pub end: f64,
}

/// Migratory optimum under maintenance windows, or `None` if some job's
/// entire span is blacked out (then no speed can save it). The solution's
/// interval set is the downtime-refined decomposition.
pub fn bal_with_downtime(
    instance: &Instance,
    downtimes: &[Downtime],
) -> Option<(BalSolution, Schedule)> {
    let m = instance.machines();
    for d in downtimes {
        assert!(d.machine < m, "downtime on unknown machine {}", d.machine);
        assert!(d.end > d.start, "empty downtime window");
    }
    if instance.is_empty() {
        let (wap, intervals) = Wap::from_instance(instance);
        let sol = bal_with_wap(instance, wap, intervals);
        let schedule = Schedule::new(m);
        return Some((sol, schedule));
    }

    // Refine the decomposition at downtime boundaries.
    let mut extra: Vec<f64> = Vec::with_capacity(downtimes.len() * 2);
    for d in downtimes {
        extra.push(d.start);
        extra.push(d.end);
    }
    let intervals = IntervalSet::from_jobs_with_points(instance.jobs(), &extra);

    // Per-interval up-machine lists (downtime covers whole refined
    // intervals by construction; overlap testing uses the midpoint).
    let up_machines: Vec<Vec<usize>> = (0..intervals.len())
        .map(|j| {
            let (a, b) = intervals.bounds(j);
            let mid = 0.5 * (a + b);
            (0..m)
                .filter(|&machine| {
                    !downtimes
                        .iter()
                        .any(|d| d.machine == machine && d.start < mid && mid < d.end)
                })
                .collect()
        })
        .collect();

    let lengths: Vec<f64> = (0..intervals.len()).map(|j| intervals.length(j)).collect();
    let capacity: Vec<f64> = up_machines
        .iter()
        .zip(&lengths)
        .map(|(up, &len)| up.len() as f64 * len)
        .collect();
    let alive: Vec<Vec<usize>> = (0..instance.len())
        .map(|i| intervals.intervals_of(i).to_vec())
        .collect();
    let wap = Wap::new(alive, lengths, capacity.clone());

    // Feasibility: every job needs some open capacity.
    for i in 0..instance.len() {
        if wap.open_time_of(i) <= 0.0 {
            return None;
        }
    }

    let sol = bal_with_wap(instance, wap, intervals);

    // Assemble: McNaughton per interval on the interval's up machines.
    let mut per_interval: Vec<Vec<(ssp_model::JobId, f64, f64)>> =
        vec![Vec::new(); sol.intervals.len()];
    for (i, allot) in sol.allotments.iter().enumerate() {
        for &(j, t) in allot {
            if t > 0.0 {
                per_interval[j].push((instance.job(i).id, t, sol.speeds.get(i)));
            }
        }
    }
    let mut schedule = Schedule::new(m);
    for (j, pieces) in per_interval.iter().enumerate() {
        if pieces.is_empty() {
            continue;
        }
        let up = &up_machines[j];
        let mut scratch = Schedule::new(up.len());
        mcnaughton(sol.intervals.bounds(j), up.len(), pieces, &mut scratch);
        for seg in scratch.segments() {
            schedule.push(Segment {
                machine: up[seg.machine],
                ..*seg
            });
        }
    }
    Some((sol, schedule))
}

/// Does any segment of the schedule run on a machine during its downtime?
/// (Validation helper for tests and callers.)
pub fn violates_downtime(schedule: &Schedule, downtimes: &[Downtime]) -> bool {
    schedule.segments().iter().any(|seg| {
        downtimes.iter().any(|d| {
            d.machine == seg.machine && seg.start < d.end - 1e-12 && d.start < seg.end - 1e-12
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bal::bal;
    use ssp_model::{Instance, Job};
    use ssp_workloads::families;

    fn inst(jobs: Vec<Job>, m: usize) -> Instance {
        Instance::new(jobs, m, 2.0).unwrap()
    }

    #[test]
    fn no_downtime_matches_plain_bal() {
        let instance = families::general(10, 2, 2.0).gen(3);
        let plain = bal(&instance).energy;
        let (sol, schedule) = bal_with_downtime(&instance, &[]).unwrap();
        assert!((sol.energy - plain).abs() <= 1e-9 * plain);
        schedule.validate(&instance, Default::default()).unwrap();
    }

    #[test]
    fn downtime_never_reduces_energy() {
        let instance = families::general(12, 3, 2.0).gen(5);
        let (lo, hi) = instance.horizon().unwrap();
        let mid = 0.5 * (lo + hi);
        let plain = bal(&instance).energy;
        let mut prev = plain;
        for frac in [0.1, 0.3, 0.6] {
            let d = Downtime {
                machine: 0,
                start: mid,
                end: mid + frac * (hi - mid),
            };
            let (sol, schedule) = bal_with_downtime(&instance, &[d]).unwrap();
            assert!(
                sol.energy >= prev * (1.0 - 1e-9),
                "longer downtime got cheaper: {} after {prev}",
                sol.energy
            );
            prev = sol.energy;
            let stats = schedule.validate(&instance, Default::default()).unwrap();
            assert!((stats.energy - sol.energy).abs() <= 1e-6 * sol.energy);
            assert!(
                !violates_downtime(&schedule, &[d]),
                "ran during maintenance"
            );
        }
        assert!(prev >= plain * (1.0 - 1e-9));
    }

    #[test]
    fn single_machine_downtime_forces_a_sprint() {
        // One machine, job [0,2] w=2; machine down [1,2]: all work must fit
        // in [0,1] at speed 2 instead of speed 1.
        let instance = inst(vec![Job::new(0, 2.0, 0.0, 2.0)], 1);
        let d = Downtime {
            machine: 0,
            start: 1.0,
            end: 2.0,
        };
        let (sol, schedule) = bal_with_downtime(&instance, &[d]).unwrap();
        assert!((sol.speeds.get(0) - 2.0).abs() < 1e-8);
        assert!((sol.energy - 4.0).abs() < 1e-6); // E = w*s^(a-1) = 2*2
        assert!(!violates_downtime(&schedule, &[d]));
        schedule.validate(&instance, Default::default()).unwrap();
    }

    #[test]
    fn total_blackout_is_infeasible() {
        let instance = inst(vec![Job::new(0, 1.0, 0.0, 1.0)], 1);
        let d = Downtime {
            machine: 0,
            start: 0.0,
            end: 1.0,
        };
        assert!(bal_with_downtime(&instance, &[d]).is_none());
    }

    #[test]
    fn work_shifts_to_the_up_machine() {
        // Two machines, one busy window; machine 1 down the whole time:
        // behaves exactly like m = 1.
        let jobs = vec![Job::new(0, 1.0, 0.0, 1.0), Job::new(1, 1.0, 0.0, 1.0)];
        let two = inst(jobs.clone(), 2);
        let d = Downtime {
            machine: 1,
            start: 0.0,
            end: 1.0,
        };
        let (sol, schedule) = bal_with_downtime(&two, &[d]).unwrap();
        let one = bal(&inst(jobs, 1)).energy;
        assert!((sol.energy - one).abs() <= 1e-6 * one);
        assert!(schedule.segments().iter().all(|s| s.machine == 0));
    }

    #[test]
    fn overlapping_downtimes_on_different_machines() {
        let instance = families::general(8, 3, 2.0).gen(9);
        let (lo, hi) = instance.horizon().unwrap();
        let span = hi - lo;
        let ds = vec![
            Downtime {
                machine: 0,
                start: lo + 0.2 * span,
                end: lo + 0.5 * span,
            },
            Downtime {
                machine: 1,
                start: lo + 0.4 * span,
                end: lo + 0.7 * span,
            },
        ];
        let (sol, schedule) = bal_with_downtime(&instance, &ds).unwrap();
        assert!(sol.energy >= bal(&instance).energy * (1.0 - 1e-9));
        assert!(!violates_downtime(&schedule, &ds));
        schedule.validate(&instance, Default::default()).unwrap();
    }

    #[test]
    fn violates_downtime_detects_real_violations() {
        let mut s = Schedule::new(2);
        s.run(ssp_model::JobId(0), 0, 0.0, 1.0, 1.0);
        let d = Downtime {
            machine: 0,
            start: 0.5,
            end: 0.8,
        };
        assert!(violates_downtime(&s, &[d]));
        let clear = Downtime {
            machine: 1,
            start: 0.5,
            end: 0.8,
        };
        assert!(!violates_downtime(&s, &[clear]));
        let adjacent = Downtime {
            machine: 0,
            start: 1.0,
            end: 2.0,
        };
        assert!(!violates_downtime(&s, &[adjacent]));
    }
}
