//! Metamorphic tests for BAL: closed-form α-power-law transforms.
//!
//! The energy objective `Σ w_i s_i^(α−1)` gives the optimum exact scaling
//! laws under instance transforms, independent of any particular optimal
//! schedule:
//!
//! * **time scaling** — stretching every release and deadline by `k`
//!   divides every optimal speed by `k`, so the optimal energy scales by
//!   `k^(1−α)`;
//! * **work scaling** — multiplying every work by `c` multiplies every
//!   optimal speed by `c`, so the energy scales by `c^α`;
//! * **machine monotonicity** — adding a machine relaxes the feasible set,
//!   so the optimal energy never increases.
//!
//! Each law is checked on seeded random instances under the property
//! runner, exercising the whole warm-started bisection stack end to end: a
//! violation of any law would expose an incorrect critical speed.

use ssp_migratory::bal::bal;
use ssp_model::{Instance, Job};
use ssp_prng::{check, Rng, StdRng};
use ssp_workloads::families;

/// Draw a small random instance from the general family.
fn random_instance(rng: &mut StdRng) -> Instance {
    let n = rng.gen_range(4usize..25);
    let m = rng.gen_range(1usize..5);
    let alpha = rng.gen_range(1.5f64..3.5);
    families::general(n, m, alpha).gen(rng.next_u64())
}

/// Rebuild an instance with transformed jobs (same machines and alpha
/// unless overridden).
fn rebuild(instance: &Instance, machines: usize, f: impl Fn(&Job) -> Job) -> Instance {
    let jobs: Vec<Job> = instance.jobs().iter().map(f).collect();
    Instance::new(jobs, machines, instance.alpha()).expect("transformed instance stays valid")
}

#[test]
fn time_axis_scaling_transforms_energy_by_k_pow_one_minus_alpha() {
    check::cases(24, 0x3E7A_0001, |rng| {
        let instance = random_instance(rng);
        let k = rng.gen_range(0.25f64..4.0);
        let scaled = rebuild(&instance, instance.machines(), |j| {
            Job::new(j.id.0, j.work, j.release * k, j.deadline * k)
        });
        let base = bal(&instance).energy;
        let transformed = bal(&scaled).energy;
        let expect = base * k.powf(1.0 - instance.alpha());
        assert!(
            (transformed - expect).abs() <= 1e-6 * expect,
            "time scale {k}: energy {transformed} vs closed form {expect} (base {base})"
        );
    });
}

#[test]
fn uniform_work_scaling_transforms_energy_by_c_pow_alpha() {
    check::cases(24, 0x3E7A_0002, |rng| {
        let instance = random_instance(rng);
        let c = rng.gen_range(0.25f64..4.0);
        let scaled = rebuild(&instance, instance.machines(), |j| {
            Job::new(j.id.0, j.work * c, j.release, j.deadline)
        });
        let base = bal(&instance).energy;
        let transformed = bal(&scaled).energy;
        let expect = base * c.powf(instance.alpha());
        assert!(
            (transformed - expect).abs() <= 1e-6 * expect,
            "work scale {c}: energy {transformed} vs closed form {expect} (base {base})"
        );
    });
}

#[test]
fn adding_a_machine_never_increases_energy() {
    check::cases(24, 0x3E7A_0003, |rng| {
        let instance = random_instance(rng);
        let more = rebuild(&instance, instance.machines() + 1, Clone::clone);
        let base = bal(&instance).energy;
        let relaxed = bal(&more).energy;
        assert!(
            relaxed <= base * (1.0 + 1e-9),
            "m {} → {}: energy rose {base} → {relaxed}",
            instance.machines(),
            instance.machines() + 1
        );
    });
}

/// The two scaling laws compose: scaling time by `k` and work by `c`
/// multiplies the energy by `c^α · k^(1−α)`. In particular `c = k` models a
/// pure change of units, with energy factor `k`.
#[test]
fn composed_scaling_matches_product_of_factors() {
    check::cases(16, 0x3E7A_0004, |rng| {
        let instance = random_instance(rng);
        let k = rng.gen_range(0.5f64..2.0);
        let scaled = rebuild(&instance, instance.machines(), |j| {
            Job::new(j.id.0, j.work * k, j.release * k, j.deadline * k)
        });
        let base = bal(&instance).energy;
        let transformed = bal(&scaled).energy;
        let expect = base * k;
        assert!(
            (transformed - expect).abs() <= 1e-6 * expect,
            "unit scale {k}: energy {transformed} vs {expect}"
        );
    });
}
