//! Declarative workload specifications.

use crate::{standard_normal, subseed};
use ssp_model::{Instance, Job};
use ssp_prng::rngs::StdRng;
use ssp_prng::{Rng, SeedableRng};

/// Arrival (release-date) process over the horizon.
#[derive(Debug, Clone, Copy, PartialEq)]
#[allow(missing_docs)] // variant fields are self-describing
pub enum ArrivalDist {
    /// i.i.d. uniform over `[0, horizon]`.
    Uniform,
    /// Poisson process: exponential inter-arrival gaps with the given rate
    /// (the horizon then *emerges* from `n` and the rate).
    Poisson { rate: f64 },
    /// Bursts of `burst` simultaneous releases separated by exponential gaps
    /// with mean `gap`.
    Bursty { burst: usize, gap: f64 },
}

/// Work (processing volume) distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
#[allow(missing_docs)] // variant fields are self-describing
pub enum WorkDist {
    /// All works exactly 1 (the paper's "unit size" hypothesis).
    Unit,
    /// Uniform on `[min, max]`.
    Uniform { min: f64, max: f64 },
    /// `exp(mu + sigma·N(0,1))` — heavy-ish tail, the classic job-size model.
    LogNormal { mu: f64, sigma: f64 },
}

/// Deadline policy: how long each job's window is.
#[derive(Debug, Clone, Copy, PartialEq)]
#[allow(missing_docs)] // variant fields are self-describing
pub enum WindowDist {
    /// Window length uniform on `[min, max]` (absolute).
    Uniform { min: f64, max: f64 },
    /// Window length = `work × U[min, max]` — i.e. the job's *inverse
    /// density* (slack factor at unit speed) is uniform. Keeps densities
    /// comparable across work distributions.
    LaxityFactor { min: f64, max: f64 },
    /// Fixed window length.
    Fixed(f64),
}

/// A reproducible workload family. Build with [`Spec::new`] + the fluent
/// setters, then call [`Spec::gen`] with a seed.
#[derive(Debug, Clone, PartialEq)]
pub struct Spec {
    /// Number of jobs.
    pub n: usize,
    /// Machine count of the generated instances.
    pub machines: usize,
    /// Power exponent.
    pub alpha: f64,
    /// Horizon for `ArrivalDist::Uniform` (ignored by the point processes).
    pub horizon: f64,
    /// Arrival process.
    pub arrivals: ArrivalDist,
    /// Work distribution.
    pub work: WorkDist,
    /// Window policy.
    pub window: WindowDist,
    /// Post-process into an agreeable instance (sort releases, then clamp
    /// each deadline to the running maximum so `r_i ≤ r_j ⇒ d_i ≤ d_j`).
    pub agreeable: bool,
}

impl Spec {
    /// A spec with uniform arrivals over `[0, n/2]`, unit works and laxity
    /// factor `[1.5, 6]`; customize with the fluent setters.
    pub fn new(n: usize, machines: usize, alpha: f64) -> Self {
        Spec {
            n,
            machines,
            alpha,
            horizon: (n as f64 / 2.0).max(1.0),
            arrivals: ArrivalDist::Uniform,
            work: WorkDist::Unit,
            window: WindowDist::LaxityFactor { min: 1.5, max: 6.0 },
            agreeable: false,
        }
    }

    /// Set the arrival process.
    pub fn arrivals(mut self, a: ArrivalDist) -> Self {
        self.arrivals = a;
        self
    }

    /// Set the work distribution.
    pub fn work(mut self, w: WorkDist) -> Self {
        self.work = w;
        self
    }

    /// Set the window policy.
    pub fn window(mut self, w: WindowDist) -> Self {
        self.window = w;
        self
    }

    /// Toggle the agreeable post-processing.
    pub fn agreeable(mut self, yes: bool) -> Self {
        self.agreeable = yes;
        self
    }

    /// Set the uniform-arrival horizon.
    pub fn horizon(mut self, h: f64) -> Self {
        assert!(h > 0.0);
        self.horizon = h;
        self
    }

    /// Override the machine count.
    pub fn machines(mut self, m: usize) -> Self {
        self.machines = m;
        self
    }

    /// Override alpha.
    pub fn alpha(mut self, a: f64) -> Self {
        self.alpha = a;
        self
    }

    /// Generate the instance for `seed`. Deterministic: same spec + seed ⇒
    /// identical instance.
    pub fn gen(&self, seed: u64) -> Instance {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut releases = self.draw_releases(&mut rng);
        if self.agreeable {
            releases.sort_by(f64::total_cmp);
        }
        let mut jobs = Vec::with_capacity(self.n);
        let mut running_deadline = f64::NEG_INFINITY;
        for (i, &r) in releases.iter().enumerate() {
            let work = self.draw_work(&mut rng);
            let len = self.draw_window(&mut rng, work);
            let mut d = r + len;
            if self.agreeable {
                // Running max keeps deadlines sorted with releases while
                // preserving d > r (the max can only push deadlines later).
                running_deadline = running_deadline.max(d);
                d = running_deadline;
            }
            jobs.push(Job::new(i as u32, work, r, d));
        }
        Instance::new(jobs, self.machines, self.alpha)
            .expect("generated jobs always satisfy model invariants")
    }

    /// Generate `count` independent instances derived from one master seed.
    pub fn gen_batch(&self, master_seed: u64, count: usize) -> Vec<Instance> {
        (0..count)
            .map(|i| self.gen(subseed(master_seed, i as u64)))
            .collect()
    }

    fn draw_releases(&self, rng: &mut StdRng) -> Vec<f64> {
        match self.arrivals {
            ArrivalDist::Uniform => (0..self.n)
                .map(|_| rng.gen::<f64>() * self.horizon)
                .collect(),
            ArrivalDist::Poisson { rate } => {
                assert!(rate > 0.0, "Poisson rate must be positive");
                let mut t = 0.0;
                (0..self.n)
                    .map(|_| {
                        t += -(1.0 - rng.gen::<f64>()).ln() / rate;
                        t
                    })
                    .collect()
            }
            ArrivalDist::Bursty { burst, gap } => {
                assert!(burst > 0 && gap > 0.0);
                let mut t = 0.0;
                let mut out = Vec::with_capacity(self.n);
                while out.len() < self.n {
                    t += -(1.0 - rng.gen::<f64>()).ln() * gap;
                    for _ in 0..burst.min(self.n - out.len()) {
                        out.push(t);
                    }
                }
                out
            }
        }
    }

    fn draw_work(&self, rng: &mut StdRng) -> f64 {
        match self.work {
            WorkDist::Unit => 1.0,
            WorkDist::Uniform { min, max } => min + rng.gen::<f64>() * (max - min),
            WorkDist::LogNormal { mu, sigma } => (mu + sigma * standard_normal(rng)).exp(),
        }
    }

    fn draw_window(&self, rng: &mut StdRng, work: f64) -> f64 {
        let len = match self.window {
            WindowDist::Uniform { min, max } => min + rng.gen::<f64>() * (max - min),
            WindowDist::LaxityFactor { min, max } => work * (min + rng.gen::<f64>() * (max - min)),
            WindowDist::Fixed(l) => l,
        };
        assert!(len > 0.0, "window policy produced a nonpositive length");
        len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_instance() {
        let spec = Spec::new(30, 3, 2.0)
            .work(WorkDist::LogNormal {
                mu: 0.0,
                sigma: 1.0,
            })
            .arrivals(ArrivalDist::Poisson { rate: 2.0 });
        assert_eq!(spec.gen(5), spec.gen(5));
        assert_ne!(spec.gen(5), spec.gen(6));
    }

    #[test]
    fn agreeable_postprocessing_works_for_every_arrival_kind() {
        for arrivals in [
            ArrivalDist::Uniform,
            ArrivalDist::Poisson { rate: 1.0 },
            ArrivalDist::Bursty { burst: 3, gap: 1.0 },
        ] {
            let inst = Spec::new(50, 2, 2.0)
                .arrivals(arrivals)
                .work(WorkDist::Uniform { min: 0.2, max: 3.0 })
                .agreeable(true)
                .gen(11);
            assert!(inst.is_agreeable(), "{arrivals:?}");
        }
    }

    #[test]
    fn unit_work_is_unit() {
        let inst = Spec::new(25, 2, 2.0).work(WorkDist::Unit).gen(3);
        assert!(inst.jobs().iter().all(|j| j.work == 1.0));
    }

    #[test]
    fn laxity_factor_controls_density() {
        let inst = Spec::new(100, 2, 2.0)
            .work(WorkDist::Uniform { min: 0.5, max: 2.0 })
            .window(WindowDist::LaxityFactor { min: 2.0, max: 4.0 })
            .gen(17);
        for j in inst.jobs() {
            let laxity = j.span() / j.work;
            assert!((2.0 - 1e-12..=4.0 + 1e-12).contains(&laxity));
        }
    }

    #[test]
    fn poisson_releases_are_increasing() {
        let inst = Spec::new(40, 1, 2.0)
            .arrivals(ArrivalDist::Poisson { rate: 3.0 })
            .gen(1);
        let rel: Vec<f64> = inst.jobs().iter().map(|j| j.release).collect();
        assert!(rel.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn bursts_share_release_instants() {
        let inst = Spec::new(12, 1, 2.0)
            .arrivals(ArrivalDist::Bursty { burst: 4, gap: 5.0 })
            .gen(2);
        let rel: Vec<f64> = inst.jobs().iter().map(|j| j.release).collect();
        // 12 jobs in bursts of 4 => exactly 3 distinct release instants.
        let mut distinct = rel.clone();
        distinct.dedup();
        assert_eq!(distinct.len(), 3);
    }

    #[test]
    fn batch_instances_differ() {
        let batch = Spec::new(10, 2, 2.0).gen_batch(99, 5);
        assert_eq!(batch.len(), 5);
        for w in batch.windows(2) {
            assert_ne!(w[0], w[1]);
        }
    }

    #[test]
    fn fixed_and_uniform_windows() {
        let f = Spec::new(10, 1, 2.0).window(WindowDist::Fixed(3.0)).gen(0);
        assert!(f.jobs().iter().all(|j| (j.span() - 3.0).abs() < 1e-12));
        let u = Spec::new(50, 1, 2.0)
            .window(WindowDist::Uniform { min: 1.0, max: 2.0 })
            .gen(0);
        assert!(u
            .jobs()
            .iter()
            .all(|j| j.span() >= 1.0 - 1e-12 && j.span() <= 2.0 + 1e-12));
    }

    #[test]
    fn horizon_bounds_uniform_releases() {
        let inst = Spec::new(50, 1, 2.0).horizon(7.0).gen(4);
        assert!(inst
            .jobs()
            .iter()
            .all(|j| j.release >= 0.0 && j.release <= 7.0));
    }
}
