//! # ssp-workloads
//!
//! Seeded, reproducible workload generators for the experiment suite. The
//! target paper is pure theory with no public instances, so every experiment
//! in `EXPERIMENTS.md` names a generator + seed + parameters from this crate
//! (the substitution is documented in DESIGN.md §6).
//!
//! The central type is [`Spec`]: a declarative description of a workload
//! family (arrival process, work distribution, window policy, agreeable
//! post-processing). `Spec::gen(seed)` produces a valid
//! [`ssp_model::Instance`], identical for identical seeds across runs and
//! platforms (`ssp_prng::StdRng` is seedable and portable).

#![warn(missing_docs)]

pub mod spec;
pub mod stream;
pub mod swf;

pub use spec::{ArrivalDist, Spec, WindowDist, WorkDist};
pub use stream::{stream_family, StreamArrival, StreamGen, StreamSpec, STREAM_FAMILIES};
pub use swf::{parse_swf, SwfOptions, SwfReport};

use ssp_model::{Instance, Job};
use ssp_prng::rngs::StdRng;
use ssp_prng::Rng;

/// Convenience: the four canonical families used throughout the experiments.
pub mod families {
    use super::*;

    /// Unit works, agreeable deadlines — the R1 (optimal round-robin) regime.
    pub fn unit_agreeable(n: usize, machines: usize, alpha: f64) -> Spec {
        Spec::new(n, machines, alpha)
            .work(WorkDist::Unit)
            .window(WindowDist::LaxityFactor { min: 1.5, max: 6.0 })
            .agreeable(true)
    }

    /// Unit works, arbitrary windows — the R2 (NP-hard / `2(2-1/m)^α`) regime.
    pub fn unit_arbitrary(n: usize, machines: usize, alpha: f64) -> Spec {
        Spec::new(n, machines, alpha)
            .work(WorkDist::Unit)
            .window(WindowDist::LaxityFactor { min: 1.2, max: 8.0 })
            .agreeable(false)
    }

    /// Heterogeneous works, agreeable deadlines — the R3 regime.
    pub fn weighted_agreeable(n: usize, machines: usize, alpha: f64) -> Spec {
        Spec::new(n, machines, alpha)
            .work(WorkDist::LogNormal {
                mu: 0.0,
                sigma: 1.0,
            })
            .window(WindowDist::LaxityFactor { min: 1.5, max: 6.0 })
            .agreeable(true)
    }

    /// Fully general instances (heterogeneous works, nested windows).
    pub fn general(n: usize, machines: usize, alpha: f64) -> Spec {
        Spec::new(n, machines, alpha)
            .work(WorkDist::LogNormal {
                mu: 0.0,
                sigma: 0.8,
            })
            .window(WindowDist::LaxityFactor {
                min: 1.2,
                max: 10.0,
            })
            .agreeable(false)
    }

    /// Bursty arrivals (Poisson bursts) for the online experiments.
    pub fn bursty(n: usize, machines: usize, alpha: f64) -> Spec {
        Spec::new(n, machines, alpha)
            .arrivals(ArrivalDist::Bursty { burst: 4, gap: 2.0 })
            .work(WorkDist::Uniform { min: 0.5, max: 2.0 })
            .window(WindowDist::LaxityFactor { min: 1.2, max: 4.0 })
            .agreeable(false)
    }

    /// The classic AVR-adversarial shape: unit jobs released in a geometric
    /// cascade, all sharing one deadline. Densities stack up toward the end,
    /// so committing each job to its average rate (AVR) overlaps many rates
    /// at once while the optimum smooths them — the family behind AVR's
    /// `Ω(α^α)`-ish lower bound. Deterministic (the seed is ignored).
    pub fn avr_cascade(n: usize, machines: usize, alpha: f64) -> Instance {
        let horizon = 1.0;
        let jobs: Vec<Job> = (0..n)
            .map(|i| {
                // Release i at 1 - 2^-i (clamped), deadline 1 for everyone.
                let r = horizon * (1.0 - 0.5f64.powi(i as i32));
                Job::new(i as u32, 1.0, r, horizon * (1.0 + 1e-9) + 1e-9)
            })
            .collect();
        Instance::new(jobs, machines, alpha).expect("cascade jobs are valid")
    }

    /// Laminar-nested windows: every pair of windows is either disjoint or
    /// strictly nested. Built by recursively bisecting the horizon and
    /// emitting one job per tree node, breadth-first, until `n` jobs exist —
    /// the worst-case shape for naive YDS peeling, since each peel of an
    /// inner interval squeezes every enclosing window.
    pub fn laminar_nested(n: usize, machines: usize, alpha: f64, seed: u64) -> Instance {
        use ssp_prng::SeedableRng;
        let mut rng = StdRng::seed_from_u64(seed);
        let horizon = n as f64;
        let mut jobs = Vec::with_capacity(n);
        let mut frontier = std::collections::VecDeque::new();
        frontier.push_back((0.0f64, horizon));
        while jobs.len() < n {
            let (lo, hi) = frontier.pop_front().expect("frontier never drains first");
            let w = rng.gen_range(0.2f64..2.0);
            jobs.push(Job::new(jobs.len() as u32, w, lo, hi));
            // Split off-center so nesting depths vary; shrink children
            // strictly inside the parent to keep the nesting strict.
            let cut = lo + (hi - lo) * rng.gen_range(0.35f64..0.65);
            let pad = (hi - lo) * 0.02;
            if cut - pad > lo + 1e-9 {
                frontier.push_back((lo + pad, cut - pad));
            }
            if hi - pad > cut + pad + 1e-9 {
                frontier.push_back((cut + pad, hi - pad));
            }
        }
        Instance::new(jobs, machines, alpha).expect("laminar jobs are valid")
    }

    /// Crossing windows: a jittered staircase of long, heavily overlapping
    /// windows (each window crosses many neighbours — overlapping but never
    /// nested). Releases and deadlines are both strictly increasing, so the
    /// instance is agreeable yet every critical-interval sweep sees a long
    /// run of live candidates.
    pub fn crossing(n: usize, machines: usize, alpha: f64, seed: u64) -> Instance {
        use ssp_prng::SeedableRng;
        let mut rng = StdRng::seed_from_u64(seed);
        let overlap = 12.0; // windows span ~12 release steps
        let jobs: Vec<Job> = (0..n)
            .map(|i| {
                let r = i as f64 + rng.gen_range(0.0f64..0.4);
                let d = (i + 1) as f64 + overlap + rng.gen_range(0.0f64..0.4);
                Job::new(i as u32, rng.gen_range(0.3f64..2.5), r, d)
            })
            .collect();
        Instance::new(jobs, machines, alpha).expect("crossing jobs are valid")
    }
}

/// A standard normal sample via Box–Muller (`ssp-prng` ships only uniform
/// draws; this keeps the workspace free of a normal-distribution dependency).
pub(crate) fn standard_normal(rng: &mut StdRng) -> f64 {
    loop {
        let u1: f64 = rng.gen::<f64>();
        let u2: f64 = rng.gen::<f64>();
        if u1 > f64::MIN_POSITIVE {
            return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        }
    }
}

/// Deterministic sub-seed derivation so one experiment seed can fan out into
/// many independent instance seeds (SplitMix64 finalizer).
pub fn subseed(seed: u64, index: u64) -> u64 {
    ssp_prng::subseed(seed, index)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssp_prng::SeedableRng;

    #[test]
    fn subseed_is_deterministic_and_spreads() {
        assert_eq!(subseed(42, 0), subseed(42, 0));
        assert_ne!(subseed(42, 0), subseed(42, 1));
        assert_ne!(subseed(42, 0), subseed(43, 0));
        // Low bits should differ too (finalizer quality smoke test).
        assert_ne!(subseed(1, 0) & 0xFF, subseed(1, 1) & 0xFF);
    }

    #[test]
    fn normal_has_plausible_moments() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "variance {var}");
    }

    #[test]
    fn canonical_families_generate_valid_instances() {
        for (name, spec) in [
            ("unit_agreeable", families::unit_agreeable(40, 4, 2.0)),
            ("unit_arbitrary", families::unit_arbitrary(40, 4, 2.0)),
            (
                "weighted_agreeable",
                families::weighted_agreeable(40, 4, 2.0),
            ),
            ("general", families::general(40, 4, 2.0)),
            ("bursty", families::bursty(40, 4, 2.0)),
        ] {
            let inst = spec.gen(123);
            assert_eq!(inst.len(), 40, "{name}");
            assert_eq!(inst.machines(), 4, "{name}");
        }
    }

    #[test]
    fn avr_cascade_has_stacked_densities() {
        let inst = families::avr_cascade(8, 1, 2.0);
        assert_eq!(inst.len(), 8);
        // Densities grow geometrically toward the deadline.
        let dens: Vec<f64> = inst.jobs().iter().map(|j| j.density()).collect();
        assert!(dens.windows(2).all(|w| w[1] > w[0] * 1.5));
    }

    #[test]
    fn laminar_nested_windows_are_laminar() {
        let inst = families::laminar_nested(48, 4, 2.0, 11);
        assert_eq!(inst.len(), 48);
        for a in inst.jobs() {
            for b in inst.jobs() {
                if a.id == b.id {
                    continue;
                }
                let disjoint = a.deadline <= b.release || b.deadline <= a.release;
                let a_in_b = b.release <= a.release && a.deadline <= b.deadline;
                let b_in_a = a.release <= b.release && b.deadline <= a.deadline;
                assert!(
                    disjoint || a_in_b || b_in_a,
                    "windows {:?} and {:?} cross",
                    (a.release, a.deadline),
                    (b.release, b.deadline)
                );
            }
        }
    }

    #[test]
    fn crossing_windows_are_agreeable_and_overlapping() {
        let inst = families::crossing(40, 4, 2.0, 5);
        assert_eq!(inst.len(), 40);
        assert!(inst.is_agreeable());
        // Neighbouring windows overlap by construction.
        for w in inst.jobs().windows(2) {
            assert!(w[1].release < w[0].deadline, "staircase lost its overlap");
        }
    }

    #[test]
    fn family_properties_hold() {
        let ua = families::unit_agreeable(60, 2, 2.5).gen(9);
        assert!(ua.is_uniform_work(Default::default()));
        assert!(ua.is_agreeable());

        let wa = families::weighted_agreeable(60, 2, 2.5).gen(9);
        assert!(wa.is_agreeable());
        assert!(!wa.is_uniform_work(Default::default()));
    }
}
