//! Open-ended arrival streams: the generator side of the online engine.
//!
//! [`Spec`](crate::Spec) materializes a fixed-`n` [`Instance`] up front;
//! a [`StreamSpec`] instead yields jobs one at a time through an infinite,
//! seeded iterator ([`StreamGen`]) whose memory use is O(1) in the number
//! of jobs drawn — that is what lets `ssp stream` and EXP-22 push 10^6+
//! arrivals through the engine without ever holding the workload.
//!
//! Releases are non-decreasing by construction (a clock that only moves
//! forward), so every stream satisfies the arrival-trace contract of
//! [`ssp_model::arrival`]. The named families ([`stream_family`]) are the
//! online experiment's counterpart of [`crate::families`]: same work and
//! window vocabulary ([`WorkDist`], [`WindowDist`]), arrival processes
//! chosen to cover the regimes that matter for a streaming engine —
//! frequent natural idle points (`bursty`, `tight`), a steady near-critical
//! trickle (`poisson`), and long heavy-tailed windows that defeat natural
//! splitting (`heavy`).

use crate::spec::{WindowDist, WorkDist};
use crate::standard_normal;
use ssp_model::{Instance, Job};
use ssp_prng::rngs::StdRng;
use ssp_prng::{Rng, SeedableRng};

/// Arrival process of a stream (all gaps are exponential, so the processes
/// are memoryless and the stream can run forever).
#[derive(Debug, Clone, Copy, PartialEq)]
#[allow(missing_docs)] // variant fields are self-describing
pub enum StreamArrival {
    /// One job per event; exponential inter-arrival gaps with mean `gap`.
    Poisson { gap: f64 },
    /// `burst` simultaneous releases per event; exponential gaps with mean
    /// `gap` between events.
    Bursty { burst: usize, gap: f64 },
}

/// A seeded, open-ended workload family.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamSpec {
    /// Machine count the stream is meant to be dispatched onto.
    pub machines: usize,
    /// Power exponent.
    pub alpha: f64,
    /// Arrival process.
    pub arrival: StreamArrival,
    /// Work distribution (shared vocabulary with [`crate::Spec`]).
    pub work: WorkDist,
    /// Window policy (shared vocabulary with [`crate::Spec`]).
    pub window: WindowDist,
}

impl StreamSpec {
    /// The infinite job iterator for `seed`. Deterministic: same spec +
    /// seed ⇒ identical stream, element for element.
    pub fn jobs(&self, seed: u64) -> StreamGen {
        StreamGen {
            spec: *self,
            rng: StdRng::seed_from_u64(seed),
            clock: 0.0,
            burst_left: 0,
            next_id: 0,
        }
    }

    /// Materialize the first `n` arrivals as a validated [`Instance`] —
    /// the bridge to the offline oracles (BAL lower bounds, EXP-22's
    /// ratio table).
    pub fn instance(&self, seed: u64, n: usize) -> Instance {
        let jobs: Vec<Job> = self.jobs(seed).take(n).collect();
        Instance::new(jobs, self.machines, self.alpha)
            .expect("generated stream jobs always satisfy model invariants")
    }
}

/// Iterator over a [`StreamSpec`]'s arrivals. Never ends; callers bound it
/// with `take(n)` or an external stop condition.
pub struct StreamGen {
    spec: StreamSpec,
    rng: StdRng,
    clock: f64,
    burst_left: usize,
    next_id: u64,
}

impl StreamGen {
    fn draw_work(&mut self) -> f64 {
        match self.spec.work {
            WorkDist::Unit => 1.0,
            WorkDist::Uniform { min, max } => min + self.rng.gen::<f64>() * (max - min),
            WorkDist::LogNormal { mu, sigma } => {
                (mu + sigma * standard_normal(&mut self.rng)).exp()
            }
        }
    }

    fn draw_window(&mut self, work: f64) -> f64 {
        match self.spec.window {
            WindowDist::Uniform { min, max } => min + self.rng.gen::<f64>() * (max - min),
            WindowDist::LaxityFactor { min, max } => {
                work * (min + self.rng.gen::<f64>() * (max - min))
            }
            WindowDist::Fixed(l) => l,
        }
    }

    fn exp_gap(&mut self, mean: f64) -> f64 {
        -(1.0 - self.rng.gen::<f64>()).ln() * mean
    }
}

impl Iterator for StreamGen {
    type Item = Job;

    fn next(&mut self) -> Option<Job> {
        match self.spec.arrival {
            StreamArrival::Poisson { gap } => {
                self.clock += self.exp_gap(gap);
            }
            StreamArrival::Bursty { burst, gap } => {
                if self.burst_left == 0 {
                    self.clock += self.exp_gap(gap);
                    self.burst_left = burst;
                }
                self.burst_left -= 1;
            }
        }
        let work = self.draw_work();
        let len = self.draw_window(work);
        let id = u32::try_from(self.next_id).expect("stream exceeded u32 job ids");
        self.next_id += 1;
        Some(Job::new(id, work, self.clock, self.clock + len))
    }
}

/// Names of the canonical stream families, in presentation order.
pub const STREAM_FAMILIES: [&str; 4] = ["bursty", "poisson", "heavy", "tight"];

/// Look up a canonical stream family by name.
///
/// * `bursty` — bursts of 6 uniform-work jobs, generous gaps: the live
///   window empties often, so natural compaction splits dominate.
/// * `poisson` — steady unit-work trickle with moderate laxity: long
///   stretches without an idle point, windows stay small.
/// * `heavy` — log-normal works with wide laxity factors: rare long
///   windows straddle would-be split points, forcing capped compaction.
/// * `tight` — bursts with laxity barely above 1: high speeds, tiny
///   windows, splits after nearly every burst.
pub fn stream_family(name: &str, machines: usize, alpha: f64) -> Option<StreamSpec> {
    let (arrival, work, window) = match name {
        "bursty" => (
            StreamArrival::Bursty { burst: 6, gap: 6.0 },
            WorkDist::Uniform { min: 0.5, max: 2.0 },
            WindowDist::LaxityFactor { min: 1.2, max: 4.0 },
        ),
        "poisson" => (
            StreamArrival::Poisson { gap: 1.0 },
            WorkDist::Unit,
            WindowDist::LaxityFactor { min: 1.5, max: 6.0 },
        ),
        "heavy" => (
            StreamArrival::Poisson { gap: 1.5 },
            WorkDist::LogNormal {
                mu: 0.0,
                sigma: 1.0,
            },
            WindowDist::LaxityFactor { min: 1.5, max: 8.0 },
        ),
        "tight" => (
            StreamArrival::Bursty { burst: 4, gap: 3.0 },
            WorkDist::Uniform { min: 0.5, max: 1.5 },
            WindowDist::LaxityFactor {
                min: 1.05,
                max: 1.6,
            },
        ),
        _ => return None,
    };
    Some(StreamSpec {
        machines,
        alpha,
        arrival,
        work,
        window,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssp_model::arrival::validate_arrival;

    #[test]
    fn streams_are_deterministic_and_release_sorted() {
        for name in STREAM_FAMILIES {
            let spec = stream_family(name, 4, 2.0).unwrap();
            let a: Vec<Job> = spec.jobs(7).take(500).collect();
            let b: Vec<Job> = spec.jobs(7).take(500).collect();
            assert_eq!(a, b, "{name} not deterministic");
            let mut last = f64::NEG_INFINITY;
            for j in &a {
                validate_arrival(j, last).unwrap_or_else(|e| panic!("{name}: {e}"));
                last = j.release;
            }
        }
    }

    #[test]
    fn instance_bridge_matches_the_stream_prefix() {
        let spec = stream_family("bursty", 3, 2.5).unwrap();
        let inst = spec.instance(11, 64);
        let direct: Vec<Job> = spec.jobs(11).take(64).collect();
        assert_eq!(inst.jobs(), &direct[..]);
        assert_eq!(inst.machines(), 3);
        assert_eq!(inst.alpha(), 2.5);
    }

    #[test]
    fn unknown_family_is_none() {
        assert!(stream_family("nope", 2, 2.0).is_none());
    }

    #[test]
    fn bursty_streams_have_simultaneous_releases() {
        let spec = stream_family("bursty", 2, 2.0).unwrap();
        let jobs: Vec<Job> = spec.jobs(3).take(60).collect();
        assert!(jobs.windows(2).any(|w| w[0].release == w[1].release));
    }
}
