//! Import of Standard Workload Format (SWF) traces.
//!
//! SWF is the de-facto interchange format of the Parallel Workloads Archive:
//! one job per line, 18 whitespace-separated fields, `;` comments. Real
//! traces carry no energy model and no deadlines, so the importer performs a
//! documented *synthesis* (DESIGN.md §6): a job's **work** is its
//! core-seconds (`runtime × processors`), its **release** is the submit
//! time, and its **deadline** is `submit + requested_time` when the trace
//! has a meaningful request, otherwise `submit + laxity × runtime`.
//!
//! Fields used (0-indexed): 0 job id, 1 submit, 3 runtime, 4 allocated
//! processors (fallback 7 = requested processors), 8 requested time.
//! Jobs with nonpositive runtime/processors (failed or anomalous entries)
//! are skipped and counted.

use ssp_model::{Instance, Job, ModelError};

/// Options controlling the deadline/work synthesis.
#[derive(Debug, Clone, Copy)]
pub struct SwfOptions {
    /// Machine count of the produced instance.
    pub machines: usize,
    /// Power exponent.
    pub alpha: f64,
    /// Deadline slack multiplier used when the trace has no usable
    /// requested-time field: `deadline = submit + laxity × runtime`.
    pub laxity: f64,
    /// Keep at most this many (valid) jobs, in trace order.
    pub max_jobs: usize,
    /// Divide all times by this factor (traces are in seconds; scheduling
    /// horizons of 10^7 s are numerically fine but hard to read).
    pub time_scale: f64,
}

impl Default for SwfOptions {
    fn default() -> Self {
        SwfOptions {
            machines: 8,
            alpha: 2.0,
            laxity: 3.0,
            max_jobs: usize::MAX,
            time_scale: 1.0,
        }
    }
}

/// Import statistics: what was kept and what was dropped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SwfReport {
    /// Jobs imported.
    pub imported: usize,
    /// Lines skipped because of nonpositive runtime/processors.
    pub skipped_invalid: usize,
    /// Comment/blank lines.
    pub comments: usize,
}

/// Parse SWF text into an instance plus an import report.
pub fn parse_swf(text: &str, opts: SwfOptions) -> Result<(Instance, SwfReport), ModelError> {
    let mut jobs = Vec::new();
    let mut report = SwfReport {
        imported: 0,
        skipped_invalid: 0,
        comments: 0,
    };
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with(';') {
            report.comments += 1;
            continue;
        }
        if jobs.len() >= opts.max_jobs {
            break;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        if fields.len() < 9 {
            return Err(ModelError::Parse {
                line: lineno + 1,
                message: format!("SWF line has {} fields, need >= 9", fields.len()),
            });
        }
        let num = |k: usize| -> Result<f64, ModelError> {
            fields[k].parse::<f64>().map_err(|_| ModelError::Parse {
                line: lineno + 1,
                message: format!("bad numeric field {k}: '{}'", fields[k]),
            })
        };
        let id = num(0)? as u32;
        let submit = num(1)? / opts.time_scale;
        let runtime = num(3)? / opts.time_scale;
        let mut procs = num(4)?;
        if procs <= 0.0 {
            procs = num(7)?; // requested processors fallback
        }
        if runtime <= 0.0 || procs <= 0.0 {
            report.skipped_invalid += 1;
            continue;
        }
        let requested = num(8)? / opts.time_scale;
        let window = if requested > runtime {
            requested
        } else {
            opts.laxity * runtime
        };
        jobs.push(Job::new(id, runtime * procs, submit, submit + window));
        report.imported += 1;
    }
    let instance = Instance::new(jobs, opts.machines, opts.alpha)?;
    Ok((instance, report))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small synthetic SWF excerpt (field layout as in the archive docs).
    const SAMPLE: &str = "\
; SWF sample
; UnixStartTime: 0
1   0    5  100  4 -1 -1  4  200 -1 1 1 1 1 1 1 -1 -1
2  10    0   50  2 -1 -1  2   -1 -1 1 1 1 1 1 1 -1 -1
3  20    0    0  4 -1 -1  4  100 -1 0 1 1 1 1 1 -1 -1
4  30    0   80 -1 -1 -1  8  160 -1 1 1 1 1 1 1 -1 -1
";

    #[test]
    fn imports_valid_jobs_and_reports() {
        let (inst, report) = parse_swf(SAMPLE, SwfOptions::default()).unwrap();
        assert_eq!(report.imported, 3);
        assert_eq!(report.skipped_invalid, 1, "zero-runtime job 3 dropped");
        assert_eq!(report.comments, 2);
        assert_eq!(inst.len(), 3);

        // Job 1: work = 100*4, release 0, deadline = 0 + 200 (requested).
        let j1 = inst.job_by_id(ssp_model::JobId(1)).unwrap();
        assert_eq!(j1.work, 400.0);
        assert_eq!(j1.release, 0.0);
        assert_eq!(j1.deadline, 200.0);

        // Job 2: no requested time (-1) => laxity * runtime = 150.
        let j2 = inst.job_by_id(ssp_model::JobId(2)).unwrap();
        assert_eq!(j2.work, 100.0);
        assert_eq!(j2.deadline, 10.0 + 150.0);

        // Job 4: allocated procs -1 => requested procs 8.
        let j4 = inst.job_by_id(ssp_model::JobId(4)).unwrap();
        assert_eq!(j4.work, 80.0 * 8.0);
    }

    #[test]
    fn time_scale_divides_times() {
        let opts = SwfOptions {
            time_scale: 10.0,
            ..Default::default()
        };
        let (inst, _) = parse_swf(SAMPLE, opts).unwrap();
        let j1 = inst.job_by_id(ssp_model::JobId(1)).unwrap();
        assert_eq!(j1.release, 0.0);
        assert_eq!(j1.deadline, 20.0);
        assert_eq!(j1.work, 10.0 * 4.0);
    }

    #[test]
    fn max_jobs_truncates() {
        let opts = SwfOptions {
            max_jobs: 1,
            ..Default::default()
        };
        let (inst, report) = parse_swf(SAMPLE, opts).unwrap();
        assert_eq!(inst.len(), 1);
        assert_eq!(report.imported, 1);
    }

    #[test]
    fn malformed_lines_error_with_position() {
        let err = parse_swf("1 2 3\n", SwfOptions::default()).unwrap_err();
        assert!(matches!(err, ModelError::Parse { line: 1, .. }));
        let err = parse_swf("1 x 0 10 1 -1 -1 1 20\n", SwfOptions::default()).unwrap_err();
        assert!(matches!(err, ModelError::Parse { line: 1, .. }));
    }

    #[test]
    fn imported_instance_is_schedulable() {
        let (inst, _) = parse_swf(SAMPLE, SwfOptions::default()).unwrap();
        let sol = ssp_migratory::bal::bal(&inst);
        assert!(sol.energy > 0.0);
        sol.schedule(&inst)
            .validate(&inst, Default::default())
            .unwrap();
    }
}
