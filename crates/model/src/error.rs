//! Error types for model construction and schedule validation.

use std::fmt;

/// Errors raised while *constructing* model objects (instances, jobs,
/// schedules) from raw data.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // variant fields are self-describing
pub enum ModelError {
    /// A job's work was not strictly positive.
    NonPositiveWork { job: u32, work: f64 },
    /// A job's deadline was not strictly after its release date.
    EmptyWindow {
        job: u32,
        release: f64,
        deadline: f64,
    },
    /// A time/work field was NaN or infinite.
    NotFinite {
        job: u32,
        field: &'static str,
        value: f64,
    },
    /// Two jobs share an id.
    DuplicateJobId { job: u32 },
    /// The machine count was zero.
    NoMachines,
    /// The power exponent `alpha` was not > 1.
    BadAlpha { alpha: f64 },
    /// The instance has no jobs where at least one is required.
    Empty,
    /// Parse failure in the text instance format.
    Parse { line: usize, message: String },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::NonPositiveWork { job, work } => {
                write!(f, "job {job}: work must be > 0, got {work}")
            }
            ModelError::EmptyWindow {
                job,
                release,
                deadline,
            } => {
                write!(
                    f,
                    "job {job}: deadline {deadline} must exceed release {release}"
                )
            }
            ModelError::NotFinite { job, field, value } => {
                write!(f, "job {job}: {field} must be finite, got {value}")
            }
            ModelError::DuplicateJobId { job } => write!(f, "duplicate job id {job}"),
            ModelError::NoMachines => write!(f, "instance needs at least one machine"),
            ModelError::BadAlpha { alpha } => {
                write!(f, "power exponent alpha must be > 1, got {alpha}")
            }
            ModelError::Empty => write!(f, "instance has no jobs"),
            ModelError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for ModelError {}

/// Violations found by [`crate::Schedule::validate`]. The validator reports the
/// *first* violation it finds per category, with enough context to debug the
/// producing algorithm.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // variant fields are self-describing
pub enum ValidationError {
    /// A segment refers to a job id not present in the instance.
    UnknownJob { job: u32 },
    /// A segment refers to a machine index `>= m`.
    BadMachine { machine: usize, machines: usize },
    /// A segment has `end <= start`.
    EmptySegment { job: u32, start: f64, end: f64 },
    /// A segment has nonpositive or non-finite speed.
    BadSpeed { job: u32, speed: f64 },
    /// A segment runs outside the job's `[release, deadline]` window.
    OutsideWindow {
        job: u32,
        start: f64,
        end: f64,
        release: f64,
        deadline: f64,
    },
    /// Two segments overlap on the same machine.
    MachineOverlap {
        machine: usize,
        job_a: u32,
        job_b: u32,
        at: f64,
    },
    /// Two segments of the same job overlap in time (parallel self-execution),
    /// possibly on different machines.
    SelfOverlap { job: u32, at: f64 },
    /// Total processed work of a job differs from its required work.
    WorkMismatch {
        job: u32,
        scheduled: f64,
        required: f64,
    },
    /// A job declared non-migratory constraints runs on several machines.
    Migrated {
        job: u32,
        machine_a: usize,
        machine_b: usize,
    },
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationError::UnknownJob { job } => {
                write!(f, "segment references unknown job {job}")
            }
            ValidationError::BadMachine { machine, machines } => {
                write!(
                    f,
                    "segment on machine {machine} but instance has {machines}"
                )
            }
            ValidationError::EmptySegment { job, start, end } => {
                write!(f, "job {job}: empty segment [{start}, {end}]")
            }
            ValidationError::BadSpeed { job, speed } => {
                write!(f, "job {job}: bad speed {speed}")
            }
            ValidationError::OutsideWindow {
                job,
                start,
                end,
                release,
                deadline,
            } => write!(
                f,
                "job {job}: segment [{start}, {end}] outside window [{release}, {deadline}]"
            ),
            ValidationError::MachineOverlap {
                machine,
                job_a,
                job_b,
                at,
            } => write!(
                f,
                "machine {machine}: jobs {job_a} and {job_b} overlap at time {at}"
            ),
            ValidationError::SelfOverlap { job, at } => {
                write!(
                    f,
                    "job {job} runs on two machines simultaneously at time {at}"
                )
            }
            ValidationError::WorkMismatch {
                job,
                scheduled,
                required,
            } => write!(
                f,
                "job {job}: scheduled work {scheduled} != required {required}"
            ),
            ValidationError::Migrated {
                job,
                machine_a,
                machine_b,
            } => write!(
                f,
                "job {job} migrates between machines {machine_a} and {machine_b}"
            ),
        }
    }
}

impl std::error::Error for ValidationError {}

/// The total error type of a solve attempt: every way any algorithm in the
/// workspace can fail to deliver a valid schedule, as data instead of a
/// panic. Produced by the fallible solver entry points and by the solve
/// harness; a solver that cannot finish returns one of these rather than
/// aborting the process.
#[derive(Debug, Clone, PartialEq)]
pub enum SolveError {
    /// The instance admits no feasible schedule under the given constraints
    /// (e.g. an energy budget below the minimum energy).
    Infeasible {
        /// What constraint cannot be met.
        message: String,
    },
    /// The instance violates a precondition of the requested algorithm
    /// (e.g. RR requires unit works and agreeable deadlines).
    Precondition {
        /// The algorithm whose precondition failed.
        algorithm: &'static str,
        /// Which precondition failed.
        message: String,
    },
    /// A numeric procedure lost its invariants (empty bisection bracket,
    /// non-finite intermediate value, flow shortfall beyond tolerance).
    Numeric {
        /// What went numerically wrong.
        message: String,
    },
    /// A resource budget ran out before convergence. The solver may still
    /// have produced a valid (suboptimal) best-so-far result; whoever
    /// raised this says so in `message`.
    BudgetExhausted {
        /// Which budget ran out (`"iterations"` or `"time"`).
        resource: &'static str,
        /// Where the budget ran out and what, if anything, was salvaged.
        message: String,
    },
    /// The algorithm panicked and the panic was caught at the harness
    /// boundary. Always a bug in the solver, but reported, not fatal.
    InternalPanic {
        /// The panic payload, when it was a string.
        message: String,
    },
    /// The instance itself is malformed ([`ModelError`]).
    Model(ModelError),
    /// The solver returned a schedule that failed post-validation
    /// ([`ValidationError`]).
    InvalidSchedule(ValidationError),
    /// The requested algorithm name is not registered.
    UnknownAlgorithm {
        /// The unrecognized name.
        name: String,
    },
}

impl SolveError {
    /// Short stable machine-readable tag for reports and logs.
    pub fn kind(&self) -> &'static str {
        match self {
            SolveError::Infeasible { .. } => "infeasible",
            SolveError::Precondition { .. } => "precondition",
            SolveError::Numeric { .. } => "numeric",
            SolveError::BudgetExhausted { .. } => "budget-exhausted",
            SolveError::InternalPanic { .. } => "internal-panic",
            SolveError::Model(_) => "model",
            SolveError::InvalidSchedule(_) => "invalid-schedule",
            SolveError::UnknownAlgorithm { .. } => "unknown-algorithm",
        }
    }
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::Infeasible { message } => write!(f, "infeasible: {message}"),
            SolveError::Precondition { algorithm, message } => {
                write!(f, "{algorithm} precondition violated: {message}")
            }
            SolveError::Numeric { message } => write!(f, "numeric failure: {message}"),
            SolveError::BudgetExhausted { resource, message } => {
                write!(f, "{resource} budget exhausted: {message}")
            }
            SolveError::InternalPanic { message } => {
                write!(f, "solver panicked: {message}")
            }
            SolveError::Model(e) => write!(f, "invalid instance: {e}"),
            SolveError::InvalidSchedule(e) => {
                write!(f, "solver produced an invalid schedule: {e}")
            }
            SolveError::UnknownAlgorithm { name } => write!(f, "unknown algorithm '{name}'"),
        }
    }
}

impl std::error::Error for SolveError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SolveError::Model(e) => Some(e),
            SolveError::InvalidSchedule(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ModelError> for SolveError {
    fn from(e: ModelError) -> Self {
        SolveError::Model(e)
    }
}

impl From<ValidationError> for SolveError {
    fn from(e: ValidationError) -> Self {
        SolveError::InvalidSchedule(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ModelError::EmptyWindow {
            job: 7,
            release: 3.0,
            deadline: 2.0,
        };
        let s = e.to_string();
        assert!(s.contains("job 7") && s.contains('3') && s.contains('2'));

        let v = ValidationError::WorkMismatch {
            job: 1,
            scheduled: 0.5,
            required: 1.0,
        };
        assert!(v.to_string().contains("0.5"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(ModelError::NoMachines, ModelError::NoMachines);
        assert_ne!(
            ValidationError::UnknownJob { job: 1 },
            ValidationError::UnknownJob { job: 2 }
        );
    }

    #[test]
    fn solve_error_kinds_and_sources() {
        let e = SolveError::from(ModelError::NoMachines);
        assert_eq!(e.kind(), "model");
        assert!(std::error::Error::source(&e).is_some());
        assert!(e.to_string().contains("at least one machine"));

        let v = SolveError::from(ValidationError::UnknownJob { job: 3 });
        assert_eq!(v.kind(), "invalid-schedule");
        assert!(v.to_string().contains("job 3"));

        let b = SolveError::BudgetExhausted {
            resource: "iterations",
            message: "bal stopped after 10".into(),
        };
        assert_eq!(b.kind(), "budget-exhausted");
        assert!(b.to_string().contains("iterations"));
        assert!(std::error::Error::source(&b).is_none());
    }
}
