//! Jobs: the unit of work in every problem variant.

use crate::Time;

/// Identifier of a job. Ids are small integers chosen by the caller; an
/// [`crate::Instance`] requires them to be unique but not contiguous.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(pub u32);

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "j{}", self.0)
    }
}

impl From<u32> for JobId {
    fn from(v: u32) -> Self {
        JobId(v)
    }
}

/// A job with processing requirement (*work*) `w`, release date `r` and
/// deadline `d`. The job may only run inside its *span* `[r, d]`, and running
/// it at speed `s` for time `t` completes `s·t` units of work.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Job {
    /// Caller-chosen unique id.
    pub id: JobId,
    /// Processing requirement `w > 0` (work, sometimes called volume).
    pub work: f64,
    /// Release date `r`.
    pub release: Time,
    /// Deadline `d > r`.
    pub deadline: Time,
}

impl Job {
    /// Construct a job. Invariants are *not* checked here — they are enforced
    /// when the job enters an [`crate::Instance`] — so tests can build
    /// deliberately broken jobs.
    pub fn new(id: u32, work: f64, release: Time, deadline: Time) -> Self {
        Job {
            id: JobId(id),
            work,
            release,
            deadline,
        }
    }

    /// Length of the feasible window `d - r`.
    #[inline]
    pub fn span(&self) -> Time {
        self.deadline - self.release
    }

    /// Density `w / (d - r)`: the minimum constant speed at which the job can
    /// be completed inside its own window (and thus a lower bound on its speed
    /// in *any* feasible schedule).
    #[inline]
    pub fn density(&self) -> f64 {
        self.work / self.span()
    }

    /// Is instant `t` inside the job's span (closed interval)?
    #[inline]
    pub fn alive_at(&self, t: Time) -> bool {
        self.release <= t && t <= self.deadline
    }

    /// Does the job's span contain the whole interval `[a, b]`?
    #[inline]
    pub fn alive_during(&self, a: Time, b: Time) -> bool {
        self.release <= a && b <= self.deadline
    }

    /// Time needed to run the whole job at constant speed `s`.
    #[inline]
    pub fn duration_at(&self, s: f64) -> Time {
        self.work / s
    }

    /// Laxity at speed `s`: slack between window length and execution time.
    /// Negative laxity means speed `s` is infeasible even in isolation.
    #[inline]
    pub fn laxity_at(&self, s: f64) -> Time {
        self.span() - self.duration_at(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn density_is_minimum_feasible_speed() {
        let j = Job::new(0, 2.0, 1.0, 5.0);
        assert!((j.density() - 0.5).abs() < 1e-15);
        // At exactly density, the job fills its window.
        assert!((j.duration_at(j.density()) - j.span()).abs() < 1e-12);
        assert!(j.laxity_at(j.density()).abs() < 1e-12);
        // Above density there is slack; below, negative laxity.
        assert!(j.laxity_at(1.0) > 0.0);
        assert!(j.laxity_at(0.25) < 0.0);
    }

    #[test]
    fn alive_predicates() {
        let j = Job::new(3, 1.0, 2.0, 4.0);
        assert!(j.alive_at(2.0) && j.alive_at(4.0) && j.alive_at(3.0));
        assert!(!j.alive_at(1.999) && !j.alive_at(4.001));
        assert!(j.alive_during(2.5, 3.5));
        assert!(j.alive_during(2.0, 4.0));
        assert!(!j.alive_during(1.5, 3.0));
        assert!(!j.alive_during(3.0, 4.5));
    }

    #[test]
    fn job_id_display_and_ord() {
        assert_eq!(JobId(12).to_string(), "j12");
        assert!(JobId(1) < JobId(2));
        assert_eq!(JobId::from(5u32), JobId(5));
    }
}
