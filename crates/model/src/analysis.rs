//! Schedule analysis: the quantities an operator actually asks about.
//!
//! All functions are read-only views over a [`Schedule`]; none of them make
//! feasibility judgments (that is [`Schedule::validate`]'s job).

use crate::instance::Instance;
use crate::numeric::pow_alpha;
use crate::schedule::Schedule;
use crate::JobId;

/// Per-machine busy fraction over the schedule's own time range
/// `[first start, makespan]`. Empty schedules yield all zeros.
pub fn utilization(schedule: &Schedule) -> Vec<f64> {
    let m = schedule.machines();
    if schedule.is_empty() {
        return vec![0.0; m];
    }
    let t0 = schedule
        .segments()
        .iter()
        .map(|s| s.start)
        .fold(f64::INFINITY, f64::min);
    let span = (schedule.makespan() - t0).max(1e-300);
    schedule
        .busy_times()
        .into_iter()
        .map(|b| b / span)
        .collect()
}

/// Completion time of every job appearing in the schedule (its latest
/// segment end), as `(job, completion)` pairs sorted by job id.
pub fn completion_times(schedule: &Schedule) -> Vec<(JobId, f64)> {
    let mut latest: std::collections::HashMap<JobId, f64> = std::collections::HashMap::new();
    for s in schedule.segments() {
        let e = latest.entry(s.job).or_insert(f64::NEG_INFINITY);
        if s.end > *e {
            *e = s.end;
        }
    }
    let mut out: Vec<(JobId, f64)> = latest.into_iter().collect();
    out.sort_by_key(|&(id, _)| id);
    out
}

/// Response time (completion − release) per job, using the instance for
/// release dates. Jobs absent from the schedule are skipped.
pub fn response_times(schedule: &Schedule, instance: &Instance) -> Vec<(JobId, f64)> {
    completion_times(schedule)
        .into_iter()
        .filter_map(|(id, c)| instance.job_by_id(id).map(|j| (id, c - j.release)))
        .collect()
}

/// Deadline slack (deadline − completion) per job; negative slack would mean
/// a miss (the validator rejects those schedules, so analysis of a validated
/// schedule sees only nonnegative values up to tolerance).
pub fn deadline_slacks(schedule: &Schedule, instance: &Instance) -> Vec<(JobId, f64)> {
    completion_times(schedule)
        .into_iter()
        .filter_map(|(id, c)| instance.job_by_id(id).map(|j| (id, j.deadline - c)))
        .collect()
}

/// The aggregate power profile: piecewise-constant `Σ_machines s^α` as
/// `(start, end, power)` pieces covering the busy parts of the timeline,
/// sorted by start. Pieces where nothing runs are omitted.
pub fn power_profile(schedule: &Schedule, alpha: f64) -> Vec<(f64, f64, f64)> {
    if schedule.is_empty() {
        return Vec::new();
    }
    // Breakpoints = all segment starts/ends.
    let mut points: Vec<f64> = Vec::with_capacity(schedule.len() * 2);
    for s in schedule.segments() {
        points.push(s.start);
        points.push(s.end);
    }
    points.sort_by(f64::total_cmp);
    points.dedup();
    let mut out = Vec::new();
    for w in points.windows(2) {
        let (a, b) = (w[0], w[1]);
        let mid = 0.5 * (a + b);
        let power: f64 = schedule
            .segments()
            .iter()
            .filter(|s| s.start <= mid && mid < s.end)
            .map(|s| pow_alpha(s.speed, alpha))
            .sum();
        if power > 0.0 {
            out.push((a, b, power));
        }
    }
    out
}

/// Peak aggregate power over time.
pub fn peak_power(schedule: &Schedule, alpha: f64) -> f64 {
    power_profile(schedule, alpha)
        .into_iter()
        .map(|(_, _, p)| p)
        .fold(0.0, f64::max)
}

/// Integral of the power profile — must equal `schedule.energy(alpha)`
/// (used as a self-check in tests and exposed for completeness).
pub fn profile_energy(schedule: &Schedule, alpha: f64) -> f64 {
    power_profile(schedule, alpha)
        .into_iter()
        .map(|(a, b, p)| (b - a) * p)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Instance, Job, Schedule};

    fn setup() -> (Instance, Schedule) {
        let inst = Instance::new(
            vec![Job::new(0, 2.0, 0.0, 3.0), Job::new(1, 1.0, 1.0, 4.0)],
            2,
            2.0,
        )
        .unwrap();
        let mut s = Schedule::new(2);
        s.run(JobId(0), 0, 0.0, 2.0, 1.0);
        s.run(JobId(1), 1, 1.0, 3.0, 0.5);
        (inst, s)
    }

    #[test]
    fn utilization_fractions() {
        let (_, s) = setup();
        // Range [0,3]; m0 busy 2, m1 busy 2.
        let u = utilization(&s);
        assert!((u[0] - 2.0 / 3.0).abs() < 1e-12);
        assert!((u[1] - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(utilization(&Schedule::new(3)), vec![0.0; 3]);
    }

    #[test]
    fn completion_and_response() {
        let (inst, s) = setup();
        assert_eq!(completion_times(&s), vec![(JobId(0), 2.0), (JobId(1), 3.0)]);
        let rt = response_times(&s, &inst);
        assert_eq!(rt, vec![(JobId(0), 2.0), (JobId(1), 2.0)]);
        let slack = deadline_slacks(&s, &inst);
        assert_eq!(slack, vec![(JobId(0), 1.0), (JobId(1), 1.0)]);
    }

    #[test]
    fn power_profile_pieces() {
        let (_, s) = setup();
        // alpha=2: [0,1]: 1.0; [1,2]: 1 + 0.25; [2,3]: 0.25.
        let p = power_profile(&s, 2.0);
        assert_eq!(p.len(), 3);
        assert_eq!(p[0], (0.0, 1.0, 1.0));
        assert!((p[1].2 - 1.25).abs() < 1e-12);
        assert!((p[2].2 - 0.25).abs() < 1e-12);
        assert!((peak_power(&s, 2.0) - 1.25).abs() < 1e-12);
    }

    #[test]
    fn profile_energy_matches_schedule_energy() {
        let (_, s) = setup();
        for alpha in [1.5, 2.0, 3.0] {
            assert!(
                (profile_energy(&s, alpha) - s.energy(alpha)).abs() <= 1e-9,
                "alpha {alpha}"
            );
        }
    }

    #[test]
    fn idle_gaps_are_omitted_from_the_profile() {
        let mut s = Schedule::new(1);
        s.run(JobId(0), 0, 0.0, 1.0, 1.0);
        s.run(JobId(0), 0, 5.0, 6.0, 1.0);
        let p = power_profile(&s, 2.0);
        assert_eq!(p.len(), 2);
        assert_eq!((p[0].0, p[0].1), (0.0, 1.0));
        assert_eq!((p[1].0, p[1].1), (5.0, 6.0));
    }
}
