//! The canonical decomposition of the time axis.
//!
//! Let `T = {t_0 < t_1 < ... < t_L}` be the sorted set of all release dates
//! and deadlines. The *elementary intervals* are `I_j = [t_{j-1}, t_j]`.
//! Inside an elementary interval the alive set `A(j)` (jobs whose span
//! contains `I_j`) is constant, which is what makes flow formulations and
//! KKT bookkeeping finite. [`IntervalSet`] materializes the decomposition and
//! both directions of the alive relation.

use crate::job::Job;
use crate::Time;

/// Sorted, deduplicated breakpoints of the time axis.
#[derive(Debug, Clone, PartialEq)]
pub struct Timeline {
    points: Vec<Time>,
}

impl Timeline {
    /// Breakpoints of a job set: all releases and deadlines, sorted, exact
    /// duplicates removed. (Values that differ only by floating noise are kept
    /// distinct — generators in this workspace produce exact breakpoints.)
    pub fn from_jobs(jobs: &[Job]) -> Self {
        let mut points: Vec<Time> = Vec::with_capacity(2 * jobs.len());
        for j in jobs {
            points.push(j.release);
            points.push(j.deadline);
        }
        points.sort_by(f64::total_cmp);
        points.dedup();
        Timeline { points }
    }

    /// The breakpoints.
    #[inline]
    pub fn points(&self) -> &[Time] {
        &self.points
    }

    /// Number of elementary intervals (`L = points - 1`, or 0).
    #[inline]
    pub fn num_intervals(&self) -> usize {
        self.points.len().saturating_sub(1)
    }
}

/// The elementary intervals of a job set together with alive sets in both
/// directions (`interval -> jobs` and `job -> intervals`).
///
/// Job indices refer to positions in the slice the set was built from (which
/// for [`crate::Instance`]-derived sets is the instance's internal indexing).
#[derive(Debug, Clone, PartialEq)]
pub struct IntervalSet {
    starts: Vec<Time>,
    ends: Vec<Time>,
    /// `alive[j]` = indices of jobs alive throughout interval `j`, ascending.
    alive: Vec<Vec<usize>>,
    /// `intervals_of[i]` = indices of intervals inside job `i`'s span, ascending.
    intervals_of: Vec<Vec<usize>>,
}

impl IntervalSet {
    /// Build the decomposition for a job slice.
    pub fn from_jobs(jobs: &[Job]) -> Self {
        Self::from_jobs_with_points(jobs, &[])
    }

    /// Build the decomposition with additional breakpoints (e.g. machine
    /// downtime boundaries): extra points strictly inside the horizon split
    /// the elementary intervals further; points outside are ignored.
    pub fn from_jobs_with_points(jobs: &[Job], extra: &[Time]) -> Self {
        let timeline = Timeline::from_jobs(jobs);
        let mut points: Vec<Time> = timeline.points().to_vec();
        if let (Some(&lo), Some(&hi)) = (points.first(), points.last()) {
            for &p in extra {
                if p > lo && p < hi {
                    points.push(p);
                }
            }
            points.sort_by(f64::total_cmp);
            points.dedup();
        }
        let pts: &[Time] = &points;
        let l = pts.len().saturating_sub(1);
        let mut starts = Vec::with_capacity(l);
        let mut ends = Vec::with_capacity(l);
        let mut alive: Vec<Vec<usize>> = vec![Vec::new(); l];
        let mut intervals_of: Vec<Vec<usize>> = vec![Vec::new(); jobs.len()];
        for j in 0..l {
            starts.push(pts[j]);
            ends.push(pts[j + 1]);
        }
        // A job's span is a contiguous run of elementary intervals; find the
        // run with binary search rather than scanning all L intervals per job.
        for (i, job) in jobs.iter().enumerate() {
            let first = match pts.binary_search_by(|p| p.total_cmp(&job.release)) {
                Ok(k) => k,
                Err(_) => unreachable!("release is a breakpoint by construction"),
            };
            let last = match pts.binary_search_by(|p| p.total_cmp(&job.deadline)) {
                Ok(k) => k,
                Err(_) => unreachable!("deadline is a breakpoint by construction"),
            };
            // Index loop on purpose: `j` feeds two parallel tables.
            #[allow(clippy::needless_range_loop)]
            for j in first..last {
                alive[j].push(i);
                intervals_of[i].push(j);
            }
        }
        IntervalSet {
            starts,
            ends,
            alive,
            intervals_of,
        }
    }

    /// Number of elementary intervals `L`.
    #[inline]
    pub fn len(&self) -> usize {
        self.starts.len()
    }

    /// `true` when there are no intervals (empty job set).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.starts.is_empty()
    }

    /// Bounds `[start, end]` of interval `j`.
    #[inline]
    pub fn bounds(&self, j: usize) -> (Time, Time) {
        (self.starts[j], self.ends[j])
    }

    /// Start of interval `j`.
    #[inline]
    pub fn start(&self, j: usize) -> Time {
        self.starts[j]
    }

    /// End of interval `j`.
    #[inline]
    pub fn end(&self, j: usize) -> Time {
        self.ends[j]
    }

    /// Length `|I_j|`.
    #[inline]
    pub fn length(&self, j: usize) -> Time {
        self.ends[j] - self.starts[j]
    }

    /// Jobs alive throughout interval `j` (ascending job indices).
    #[inline]
    pub fn alive(&self, j: usize) -> &[usize] {
        &self.alive[j]
    }

    /// Intervals covered by job `i`'s span (ascending interval indices).
    #[inline]
    pub fn intervals_of(&self, i: usize) -> &[usize] {
        &self.intervals_of[i]
    }

    /// Index of the elementary interval containing instant `t`, choosing the
    /// interval that *starts* at `t` when `t` is a breakpoint (the final
    /// breakpoint maps to the last interval). `None` outside the horizon.
    pub fn interval_at(&self, t: Time) -> Option<usize> {
        if self.is_empty() || t < self.starts[0] || t > *self.ends.last().unwrap() {
            return None;
        }
        match self.starts.binary_search_by(|s| s.total_cmp(&t)) {
            Ok(j) => Some(j),
            Err(0) => None,
            Err(k) => {
                let j = k - 1;
                if t <= self.ends[j] {
                    Some(j)
                } else {
                    Some(j + 1).filter(|&jj| jj < self.len())
                }
            }
        }
    }

    /// Total processor-time capacity `m * |I_j|` summed over all intervals —
    /// handy upper bound in sanity checks.
    pub fn total_capacity(&self, machines: usize) -> Time {
        (0..self.len()).map(|j| self.length(j)).sum::<Time>() * machines as Time
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::Job;

    fn jobs3() -> Vec<Job> {
        vec![
            Job::new(0, 1.0, 0.0, 4.0),
            Job::new(1, 1.0, 1.0, 2.0),
            Job::new(2, 1.0, 2.0, 5.0),
        ]
    }

    #[test]
    fn timeline_sorts_and_dedups() {
        let t = Timeline::from_jobs(&jobs3());
        assert_eq!(t.points(), &[0.0, 1.0, 2.0, 4.0, 5.0]);
        assert_eq!(t.num_intervals(), 4);
    }

    #[test]
    fn timeline_of_empty_set() {
        let t = Timeline::from_jobs(&[]);
        assert_eq!(t.num_intervals(), 0);
        let s = IntervalSet::from_jobs(&[]);
        assert!(s.is_empty());
        assert_eq!(s.interval_at(0.0), None);
    }

    #[test]
    fn alive_sets_match_definition() {
        let jobs = jobs3();
        let s = IntervalSet::from_jobs(&jobs);
        assert_eq!(s.len(), 4);
        // I_0=[0,1]: only job 0. I_1=[1,2]: jobs 0,1. I_2=[2,4]: jobs 0,2.
        // I_3=[4,5]: job 2.
        assert_eq!(s.alive(0), &[0]);
        assert_eq!(s.alive(1), &[0, 1]);
        assert_eq!(s.alive(2), &[0, 2]);
        assert_eq!(s.alive(3), &[2]);
        assert_eq!(s.intervals_of(0), &[0, 1, 2]);
        assert_eq!(s.intervals_of(1), &[1]);
        assert_eq!(s.intervals_of(2), &[2, 3]);
    }

    #[test]
    fn alive_is_consistent_both_directions() {
        let jobs = jobs3();
        let s = IntervalSet::from_jobs(&jobs);
        for j in 0..s.len() {
            for &i in s.alive(j) {
                assert!(s.intervals_of(i).contains(&j));
                let (a, b) = s.bounds(j);
                assert!(jobs[i].alive_during(a, b));
            }
        }
        for (i, job) in jobs.iter().enumerate() {
            // Span is exactly covered by its intervals.
            let covered: f64 = s.intervals_of(i).iter().map(|&j| s.length(j)).sum();
            assert!((covered - job.span()).abs() < 1e-12);
        }
    }

    #[test]
    fn lengths_and_bounds() {
        let s = IntervalSet::from_jobs(&jobs3());
        assert_eq!(s.bounds(2), (2.0, 4.0));
        assert_eq!(s.length(2), 2.0);
        assert_eq!(s.start(3), 4.0);
        assert_eq!(s.end(3), 5.0);
        assert!((s.total_capacity(3) - 15.0).abs() < 1e-12); // 5.0 horizon * 3
    }

    #[test]
    fn interval_at_lookup() {
        let s = IntervalSet::from_jobs(&jobs3());
        assert_eq!(s.interval_at(0.5), Some(0));
        assert_eq!(s.interval_at(1.0), Some(1)); // breakpoint -> starting interval
        assert_eq!(s.interval_at(3.9), Some(2));
        assert_eq!(s.interval_at(5.0), Some(3)); // final breakpoint -> last interval
        assert_eq!(s.interval_at(-0.1), None);
        assert_eq!(s.interval_at(5.1), None);
    }

    #[test]
    fn extra_points_split_intervals() {
        let jobs = vec![Job::new(0, 1.0, 0.0, 4.0)];
        let s = IntervalSet::from_jobs_with_points(&jobs, &[1.0, 2.5, -3.0, 9.0, 2.5]);
        // Outside-horizon and duplicate points ignored: [0,1],[1,2.5],[2.5,4].
        assert_eq!(s.len(), 3);
        assert_eq!(s.bounds(1), (1.0, 2.5));
        // The job is alive in all three pieces.
        assert_eq!(s.intervals_of(0), &[0, 1, 2]);
        // Span coverage unchanged.
        let covered: f64 = (0..s.len()).map(|j| s.length(j)).sum();
        assert!((covered - 4.0).abs() < 1e-12);
    }

    #[test]
    fn duplicate_breakpoints_collapse() {
        let jobs = vec![Job::new(0, 1.0, 0.0, 1.0), Job::new(1, 1.0, 0.0, 1.0)];
        let s = IntervalSet::from_jobs(&jobs);
        assert_eq!(s.len(), 1);
        assert_eq!(s.alive(0), &[0, 1]);
    }
}
