//! Discrete speed levels (realistic DVFS).
//!
//! Real processors offer a finite set of frequencies, not a continuum. The
//! classic reduction: a job that the continuous optimum runs at speed `s`
//! with `l ≤ s ≤ u` for adjacent available levels `l < u` can instead run
//! *partly at `l` and partly at `u`*, completing the same work in the same
//! wall-clock time — split each segment of duration `T` and work `sT` into
//! a `u`-piece of duration `T·(s−l)/(u−l)` and an `l`-piece of the rest.
//! Feasibility is untouched (every segment keeps its exact time span); only
//! energy changes, by the convexity gap between `s^α` and the chord of the
//! level curve. With a reasonably fine level grid the overhead vanishes —
//! quantified by EXP-11.
//!
//! Segments slower than the lowest level are handled by *pulsing* the lowest
//! level (run at `l_min` for `sT/l_min ≤ T`, idle the rest — idle power is 0
//! in this model). Segments faster than the highest level are infeasible;
//! [`quantize_speeds`] reports them.

use crate::error::ModelError;
use crate::schedule::{Schedule, Segment};

/// A sorted, deduplicated set of available speed levels.
#[derive(Debug, Clone, PartialEq)]
pub struct SpeedLevels {
    levels: Vec<f64>,
}

impl SpeedLevels {
    /// Validate and sort a level set: all levels finite and positive.
    pub fn new(mut levels: Vec<f64>) -> Result<Self, ModelError> {
        if levels.is_empty() {
            return Err(ModelError::Parse {
                line: 0,
                message: "no speed levels".into(),
            });
        }
        for &l in &levels {
            let level_ok = l > 0.0 && l.is_finite();
            if !level_ok {
                return Err(ModelError::Parse {
                    line: 0,
                    message: format!("bad speed level {l}"),
                });
            }
        }
        levels.sort_by(f64::total_cmp);
        levels.dedup();
        Ok(SpeedLevels { levels })
    }

    /// A geometric grid: `count` levels from `min` to `max` — the standard
    /// shape of real DVFS tables.
    pub fn geometric(min: f64, max: f64, count: usize) -> Result<Self, ModelError> {
        assert!(count >= 2 && max > min && min > 0.0);
        let ratio = (max / min).powf(1.0 / (count - 1) as f64);
        let levels = (0..count).map(|k| min * ratio.powi(k as i32)).collect();
        SpeedLevels::new(levels)
    }

    /// The levels, ascending.
    pub fn levels(&self) -> &[f64] {
        &self.levels
    }

    /// Fastest level.
    pub fn max(&self) -> f64 {
        *self.levels.last().unwrap()
    }

    /// Slowest level.
    pub fn min(&self) -> f64 {
        self.levels[0]
    }

    /// The adjacent levels bracketing `s`: `(l, u)` with `l ≤ s ≤ u`.
    /// Returns `None` when `s` exceeds the fastest level; for `s` below the
    /// slowest level returns `(0.0, min)` — "idle" pairs with the lowest
    /// level (pulsing).
    pub fn bracket(&self, s: f64) -> Option<(f64, f64)> {
        if s > self.max() * (1.0 + 1e-12) {
            return None;
        }
        if s <= self.min() {
            return Some((0.0, self.min()));
        }
        match self.levels.binary_search_by(|l| l.total_cmp(&s)) {
            Ok(k) => Some((self.levels[k], self.levels[k])),
            Err(k) => Some((self.levels[k - 1], self.levels[k])),
        }
    }
}

/// Rewrite a (continuous-speed) schedule so every segment runs at an
/// available level, preserving each segment's time span and work exactly.
/// Fails with the offending speed if some segment exceeds the fastest level.
///
/// ```
/// use ssp_model::quantize::{quantize_speeds, SpeedLevels};
/// use ssp_model::{JobId, Schedule};
///
/// let mut s = Schedule::new(1);
/// s.run(JobId(0), 0, 0.0, 2.0, 1.5); // between levels 1 and 2
/// let grid = SpeedLevels::new(vec![1.0, 2.0]).unwrap();
/// let q = quantize_speeds(&s, &grid).unwrap();
/// assert_eq!(q.len(), 2);                       // two-level mix
/// assert!((q.work_of(JobId(0)) - 3.0).abs() < 1e-12); // same work
/// ```
pub fn quantize_speeds(schedule: &Schedule, levels: &SpeedLevels) -> Result<Schedule, f64> {
    let mut out = Schedule::new(schedule.machines());
    for seg in schedule.segments() {
        let (l, u) = levels.bracket(seg.speed).ok_or(seg.speed)?;
        if l == u || (u - l) <= 1e-12 * u {
            out.push(Segment { speed: u, ..*seg });
            continue;
        }
        let duration = seg.end - seg.start;
        // Time at the upper level so that l·t_l + u·t_u = s·T, t_l + t_u = T.
        let t_u = duration * (seg.speed - l) / (u - l);
        let split = seg.start + t_u;
        out.push(Segment {
            end: split,
            speed: u,
            ..*seg
        });
        if l > 0.0 {
            out.push(Segment {
                start: split,
                speed: l,
                ..*seg
            });
        }
        // l == 0: the remainder of the span is idle (pulsing the lowest
        // level); nothing to emit.
    }
    Ok(out)
}

/// Worst-case energy ratio of quantizing a speed `s ∈ [l, u]` to the
/// two-level mix, at exponent `alpha`: the chord-to-curve ratio
/// `(l^α·(u−s) + u^α·(s−l)) / ((u−l)·s^α)` maximized over `s`. Exposed for
/// the EXP-11 overhead analysis.
pub fn two_level_overhead(l: f64, u: f64, alpha: f64) -> f64 {
    assert!(u > l && l >= 0.0);
    // Maximize f(s) = (l^α (u−s) + u^α (s−l)) / ((u−l) s^α) over s in [l,u].
    // f is smooth; sample densely (analysis helper, not a hot path).
    let mut worst: f64 = 1.0;
    let steps = 1000;
    for k in 0..=steps {
        let s = l + (u - l) * k as f64 / steps as f64;
        if s <= 0.0 {
            continue;
        }
        let mixed = (l.powf(alpha) * (u - s) + u.powf(alpha) * (s - l)) / (u - l);
        worst = worst.max(mixed / s.powf(alpha));
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::ValidationOptions;
    use crate::{Instance, Job, JobId};
    use ssp_prng::{check, Rng};

    /// Quantization onto a covering grid preserves each segment's work
    /// and time span and never reduces energy, for random schedules and
    /// random geometric grids.
    #[test]
    fn quantize_preserves_work_and_grows_energy() {
        check::cases(48, 0x9_0A17, |rng| {
            let segs: Vec<(f64, f64, f64)> = check::vec_of(rng, 1..12, |r| {
                (
                    r.gen_range(0.1f64..4.0),
                    r.gen_range(0.0f64..10.0),
                    r.gen_range(0.1f64..3.0),
                )
            });
            let count = rng.gen_range(2usize..9);
            let alpha = rng.gen_range(1.3f64..3.0);
            let mut schedule = crate::Schedule::new(1);
            let mut t = 0.0;
            for (i, &(speed, gap, len)) in segs.iter().enumerate() {
                t += gap;
                schedule.run(JobId(i as u32), 0, t, t + len, speed);
                t += len;
            }
            let smax = segs.iter().map(|&(s, _, _)| s).fold(0.0f64, f64::max);
            let smin = segs
                .iter()
                .map(|&(s, _, _)| s)
                .fold(f64::INFINITY, f64::min);
            let grid = SpeedLevels::geometric(smin * 0.9, smax * 1.1, count).unwrap();
            let q = quantize_speeds(&schedule, &grid).unwrap();
            // Per-job work conserved.
            for (i, &(speed, _, len)) in segs.iter().enumerate() {
                let w = q.work_of(JobId(i as u32));
                assert!(
                    (w - speed * len).abs() <= 1e-9 * (speed * len),
                    "job {i} work {w} vs {}",
                    speed * len
                );
            }
            // Energy grows (convexity), speeds all on-grid.
            assert!(q.energy(alpha) >= schedule.energy(alpha) * (1.0 - 1e-9));
            for seg in q.segments() {
                assert!(grid
                    .levels()
                    .iter()
                    .any(|&l| (l - seg.speed).abs() < 1e-9 * l));
            }
            // Time spans never exceed the originals.
            assert!(q.makespan() <= schedule.makespan() + 1e-9);
        });
    }

    fn levels() -> SpeedLevels {
        SpeedLevels::new(vec![1.0, 2.0, 4.0]).unwrap()
    }

    #[test]
    fn construction_validates_and_sorts() {
        let l = SpeedLevels::new(vec![3.0, 1.0, 2.0, 2.0]).unwrap();
        assert_eq!(l.levels(), &[1.0, 2.0, 3.0]);
        assert!(SpeedLevels::new(vec![]).is_err());
        assert!(SpeedLevels::new(vec![0.0]).is_err());
        assert!(SpeedLevels::new(vec![-1.0]).is_err());
    }

    #[test]
    fn geometric_grid_shape() {
        let g = SpeedLevels::geometric(0.5, 4.0, 4).unwrap();
        assert_eq!(g.levels().len(), 4);
        assert!((g.min() - 0.5).abs() < 1e-12);
        assert!((g.max() - 4.0).abs() < 1e-12);
        // Constant ratio.
        let r0 = g.levels()[1] / g.levels()[0];
        let r1 = g.levels()[2] / g.levels()[1];
        assert!((r0 - r1).abs() < 1e-9);
    }

    #[test]
    fn bracket_cases() {
        let l = levels();
        assert_eq!(l.bracket(3.0), Some((2.0, 4.0)));
        assert_eq!(l.bracket(2.0), Some((2.0, 2.0)));
        assert_eq!(l.bracket(0.5), Some((0.0, 1.0)));
        assert_eq!(l.bracket(4.0), Some((4.0, 4.0)));
        assert_eq!(l.bracket(4.5), None);
    }

    /// The fundamental property: quantization preserves work and span per
    /// job and never lengthens any segment's time range.
    #[test]
    fn quantization_preserves_work_and_validity() {
        let inst = Instance::new(
            vec![Job::new(0, 3.0, 0.0, 2.0), Job::new(1, 1.0, 0.5, 3.0)],
            2,
            2.0,
        )
        .unwrap();
        let mut s = Schedule::new(2);
        s.run(JobId(0), 0, 0.0, 2.0, 1.5); // between levels 1 and 2
        s.run(JobId(1), 1, 0.5, 2.5, 0.5); // below the lowest level
        let q = quantize_speeds(&s, &levels()).unwrap();
        // Same validator, same work conservation.
        let stats = q
            .validate(&inst, ValidationOptions::non_migratory())
            .unwrap();
        // Every speed is an available level.
        for seg in q.segments() {
            assert!(
                levels()
                    .levels()
                    .iter()
                    .any(|&l| (l - seg.speed).abs() < 1e-12),
                "speed {} not a level",
                seg.speed
            );
        }
        // Energy increased (convexity) but by a bounded factor.
        let (e0, e1) = (s.energy(2.0), stats.energy);
        assert!(e1 >= e0 - 1e-9, "quantization cannot reduce energy");
        assert!(
            e1 <= e0 * two_level_overhead(1.0, 2.0, 2.0).max(two_level_overhead(0.0, 1.0, 2.0))
                + 1e-9
        );
    }

    #[test]
    fn exact_level_passes_through() {
        let mut s = Schedule::new(1);
        s.run(JobId(0), 0, 0.0, 1.0, 2.0);
        let q = quantize_speeds(&s, &levels()).unwrap();
        assert_eq!(q.len(), 1);
        assert_eq!(q.segments()[0].speed, 2.0);
        assert_eq!(q.energy(3.0), s.energy(3.0));
    }

    #[test]
    fn over_speed_is_reported() {
        let mut s = Schedule::new(1);
        s.run(JobId(0), 0, 0.0, 1.0, 9.0);
        assert_eq!(quantize_speeds(&s, &levels()), Err(9.0));
    }

    #[test]
    fn pulsing_below_min_level_idles_the_tail() {
        let mut s = Schedule::new(1);
        s.run(JobId(0), 0, 0.0, 4.0, 0.25); // work 1, min level 1.0
        let q = quantize_speeds(&s, &levels()).unwrap();
        assert_eq!(q.len(), 1, "idle remainder emits no segment");
        let seg = q.segments()[0];
        assert_eq!(seg.speed, 1.0);
        assert!((seg.work() - 1.0).abs() < 1e-12);
        assert!((seg.end - 1.0).abs() < 1e-12, "runs [0,1] then idles");
    }

    #[test]
    fn overhead_bounds() {
        // Identical levels: no overhead. Wide bracket at alpha=2: overhead
        // of mixing 1 and 2 peaks at s where derivative vanishes; just check
        // it is finite, > 1 and grows with the gap.
        let narrow = two_level_overhead(1.0, 1.25, 2.0);
        let wide = two_level_overhead(1.0, 4.0, 2.0);
        assert!(narrow > 1.0 && wide > narrow);
        assert!(
            wide < 2.0,
            "mixing overhead at alpha=2 stays below 2: {wide}"
        );
    }
}
