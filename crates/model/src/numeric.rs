//! Floating-point comparison policy for the whole workspace.
//!
//! Scheduling with continuous speeds is inherently a real-valued problem; the
//! papers assume exact arithmetic. We use `f64` everywhere and funnel *every*
//! tolerant comparison through this module so that numeric behaviour is
//! uniform and auditable. The default tolerance is **relative** (`1e-9`),
//! falling back to an absolute floor for quantities near zero.
//!
//! Algorithms that binary-search a speed (BAL, MBAL) use the tighter
//! [`BINARY_SEARCH_REL_WIDTH`] so that downstream tolerant checks (validators,
//! KKT certificates) have headroom over the search error.

use crate::error::SolveError;
use crate::resource::Meter;

/// Default relative tolerance for "are these two model quantities equal".
pub const REL_EPS: f64 = 1e-9;

/// Absolute floor used when both operands are close to zero (where a relative
/// test is meaningless).
pub const ABS_EPS: f64 = 1e-12;

/// Relative interval width at which speed/makespan binary searches stop.
/// Two decades tighter than [`REL_EPS`] so certified post-checks pass.
pub const BINARY_SEARCH_REL_WIDTH: f64 = 1e-12;

/// A tolerance bundle: relative part scaled by operand magnitude plus an
/// absolute floor. `Tol::default()` is the workspace-wide default.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tol {
    /// Relative component, scaled by `max(|a|, |b|)`.
    pub rel: f64,
    /// Absolute floor.
    pub abs: f64,
}

impl Default for Tol {
    fn default() -> Self {
        Tol {
            rel: REL_EPS,
            abs: ABS_EPS,
        }
    }
}

impl Tol {
    /// A tolerance with the given relative component and the default absolute
    /// floor.
    pub fn rel(rel: f64) -> Self {
        Tol { rel, abs: ABS_EPS }
    }

    /// A loose tolerance for end-to-end assertions on accumulated quantities
    /// (total energy, total work): `1e-6` relative.
    pub fn loose() -> Self {
        Tol {
            rel: 1e-6,
            abs: 1e-9,
        }
    }

    /// The margin this tolerance allows at magnitude `scale`.
    pub fn margin(&self, scale: f64) -> f64 {
        self.abs.max(self.rel * scale.abs())
    }

    /// `a == b` up to this tolerance.
    pub fn eq(&self, a: f64, b: f64) -> bool {
        (a - b).abs() <= self.margin(a.abs().max(b.abs()))
    }

    /// `a <= b` up to this tolerance (i.e. `a` may exceed `b` by the margin).
    pub fn le(&self, a: f64, b: f64) -> bool {
        a <= b + self.margin(a.abs().max(b.abs()))
    }

    /// `a >= b` up to this tolerance.
    pub fn ge(&self, a: f64, b: f64) -> bool {
        self.le(b, a)
    }

    /// Strictly less: `a < b` by *more* than the margin.
    pub fn lt(&self, a: f64, b: f64) -> bool {
        !self.ge(a, b)
    }

    /// Strictly greater: `a > b` by *more* than the margin.
    pub fn gt(&self, a: f64, b: f64) -> bool {
        !self.le(a, b)
    }

    /// Is `x` zero up to the tolerance (at scale `scale`)?
    pub fn is_zero_at(&self, x: f64, scale: f64) -> bool {
        x.abs() <= self.margin(scale)
    }
}

/// Convenience: default-tolerance equality.
pub fn approx_eq(a: f64, b: f64) -> bool {
    Tol::default().eq(a, b)
}

/// Convenience: default-tolerance `a <= b`.
pub fn approx_le(a: f64, b: f64) -> bool {
    Tol::default().le(a, b)
}

/// Convenience: default-tolerance `a >= b`.
pub fn approx_ge(a: f64, b: f64) -> bool {
    Tol::default().ge(a, b)
}

/// Relative difference `|a-b| / max(|a|,|b|,1e-300)`; `0` for `a == b == 0`.
pub fn rel_diff(a: f64, b: f64) -> f64 {
    let scale = a.abs().max(b.abs());
    if scale == 0.0 {
        0.0
    } else {
        (a - b).abs() / scale
    }
}

/// Power `s^alpha` for speeds. `alpha` is typically in `(1, 3]`; `powf` is
/// accurate enough at our tolerance and this wrapper centralizes the choice.
#[inline]
pub fn pow_alpha(s: f64, alpha: f64) -> f64 {
    debug_assert!(s >= 0.0, "speed must be nonnegative, got {s}");
    s.powf(alpha)
}

/// Energy of running `work` units at constant speed `s`: `work * s^(alpha-1)`.
/// Returns `0` for zero work regardless of speed (so that jobs of zero
/// residual work never contribute NaNs).
#[inline]
pub fn energy_of(work: f64, s: f64, alpha: f64) -> f64 {
    if work == 0.0 {
        0.0
    } else {
        work * pow_alpha(s, alpha - 1.0)
    }
}

/// Batched total energy `Σ_i energy_of(works[i], speeds[i], alpha)`.
///
/// The hot summation of the YDS peel and the `YdsEval` memo oracle: one
/// pass over two flat `f64` slices with four independent accumulator
/// lanes, so the adds pipeline (and auto-vectorize) instead of serializing
/// on one register. The common exponents `α = 2` and `α = 3` reduce the
/// inner `powf` to zero or one multiply.
///
/// Determinism: the lane structure is a function of `works.len()` only, so
/// the result is bit-stable for a given input — but it intentionally
/// differs from naive left-to-right order. Callers pinning bit-identity
/// must route *every* compared path through this function (as the YDS
/// kernels do).
pub fn energy_sum(works: &[f64], speeds: &[f64], alpha: f64) -> f64 {
    assert_eq!(works.len(), speeds.len(), "works/speeds length mismatch");
    debug_assert!(alpha > 1.0);
    if alpha == 2.0 {
        energy_sum_with(works, speeds, |s| s)
    } else if alpha == 3.0 {
        energy_sum_with(works, speeds, |s| s * s)
    } else {
        let e = alpha - 1.0;
        energy_sum_with(works, speeds, |s| s.powf(e))
    }
}

/// The lane-structured kernel behind [`energy_sum`]. Zero-work entries
/// contribute exactly `0` regardless of speed (mirroring [`energy_of`]'s
/// NaN guard: a zero-residual job may carry speed `0` and `0 * 0^e` would
/// otherwise poison the sum at fractional exponents).
#[inline(always)]
fn energy_sum_with(works: &[f64], speeds: &[f64], pow: impl Fn(f64) -> f64) -> f64 {
    let mut acc = [0.0f64; 4];
    let head = works.len() & !3;
    for (w4, s4) in works[..head]
        .chunks_exact(4)
        .zip(speeds[..head].chunks_exact(4))
    {
        for k in 0..4 {
            acc[k] += if w4[k] == 0.0 {
                0.0
            } else {
                w4[k] * pow(s4[k])
            };
        }
    }
    for (k, (&w, &s)) in works[head..].iter().zip(&speeds[head..]).enumerate() {
        acc[k] += if w == 0.0 { 0.0 } else { w * pow(s) };
    }
    (acc[0] + acc[1]) + (acc[2] + acc[3])
}

/// Generic tolerant binary search for the smallest `x` in `[lo, hi]` with
/// `feasible(x)`; requires `feasible(hi)` (checked) and assumes monotonicity.
/// Returns `(last_infeasible, first_feasible)` bracketing the threshold with
/// relative width `rel_width`. If `feasible(lo)`, returns `(lo, lo)`.
///
/// This is the primitive behind the BAL critical-speed search and the MBAL
/// makespan search; both need *both* endpoints (the infeasible one drives
/// criticality detection).
pub fn bisect_threshold(
    mut lo: f64,
    mut hi: f64,
    rel_width: f64,
    mut feasible: impl FnMut(f64) -> bool,
) -> (f64, f64) {
    assert!(lo <= hi, "bisect_threshold: lo {lo} > hi {hi}");
    assert!(
        feasible(hi),
        "bisect_threshold: upper bound must be feasible"
    );
    if feasible(lo) {
        return (lo, lo);
    }
    // Invariant: !feasible(lo) && feasible(hi).
    while hi - lo > rel_width * hi.abs().max(1e-300) {
        let mid = 0.5 * (lo + hi);
        if mid <= lo || mid >= hi {
            break; // f64 exhausted
        }
        if feasible(mid) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    (lo, hi)
}

/// Fallible, budget-aware variant of [`bisect_threshold`].
///
/// Differences from the asserting version:
///
/// * a bad bracket (`lo > hi`, non-finite bounds, infeasible `hi`) is a
///   [`SolveError::Numeric`] instead of a panic;
/// * every feasibility probe charges one iteration on `meter`; when the
///   budget runs out the *current* bracket is returned (its `hi` end is
///   feasible, so it is a usable best-so-far answer) and the caller can see
///   the exhaustion via [`Meter::exhausted`].
pub fn bisect_threshold_budgeted(
    mut lo: f64,
    mut hi: f64,
    rel_width: f64,
    meter: &mut Meter,
    mut feasible: impl FnMut(f64) -> bool,
) -> Result<(f64, f64), SolveError> {
    if !(lo.is_finite() && hi.is_finite()) || lo > hi {
        return Err(SolveError::Numeric {
            message: format!("bisection bracket [{lo}, {hi}] is not a finite interval"),
        });
    }
    meter.tick();
    if !feasible(hi) {
        return Err(SolveError::Numeric {
            message: format!("bisection upper bound {hi} is not feasible"),
        });
    }
    meter.tick();
    if feasible(lo) {
        return Ok((lo, lo));
    }
    // Invariant: !feasible(lo) && feasible(hi).
    while hi - lo > rel_width * hi.abs().max(1e-300) {
        let mid = 0.5 * (lo + hi);
        if mid <= lo || mid >= hi {
            break; // f64 exhausted
        }
        if !meter.tick() {
            break; // budget exhausted: return the best bracket so far
        }
        if feasible(mid) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    Ok((lo, hi))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tol_eq_respects_relative_scale() {
        let t = Tol::default();
        assert!(t.eq(1e12, 1e12 + 1.0)); // 1 part in 1e12
        assert!(!t.eq(1.0, 1.0 + 1e-6));
        assert!(t.eq(1.0, 1.0 + 1e-10));
    }

    #[test]
    fn tol_eq_near_zero_uses_abs_floor() {
        let t = Tol::default();
        assert!(t.eq(0.0, 1e-13));
        assert!(!t.eq(0.0, 1e-9));
    }

    #[test]
    fn tol_le_allows_margin() {
        let t = Tol::default();
        assert!(t.le(1.0 + 1e-10, 1.0));
        assert!(!t.le(1.0 + 1e-6, 1.0));
        assert!(t.le(0.5, 1.0));
    }

    #[test]
    fn tol_strict_comparisons_are_complements() {
        let t = Tol::default();
        assert!(t.lt(1.0, 2.0));
        assert!(!t.lt(2.0, 1.0));
        assert!(!t.lt(1.0, 1.0 + 1e-12)); // too close to call strict
        assert!(t.gt(2.0, 1.0));
    }

    #[test]
    fn rel_diff_basics() {
        assert_eq!(rel_diff(0.0, 0.0), 0.0);
        assert!((rel_diff(1.0, 2.0) - 0.5).abs() < 1e-15);
        assert!((rel_diff(2.0, 1.0) - 0.5).abs() < 1e-15);
    }

    #[test]
    fn energy_formula_matches_power_times_time() {
        // work w at speed s takes w/s time at power s^alpha:
        // E = (w/s) * s^alpha = w * s^(alpha-1).
        let (w, s, alpha) = (3.0, 2.0, 2.5);
        let direct = (w / s) * pow_alpha(s, alpha);
        assert!(approx_eq(direct, energy_of(w, s, alpha)));
    }

    #[test]
    fn energy_of_zero_work_is_zero() {
        assert_eq!(energy_of(0.0, 5.0, 3.0), 0.0);
        assert_eq!(energy_of(0.0, 0.0, 3.0), 0.0);
    }

    #[test]
    fn bisect_finds_threshold() {
        let threshold = 0.37;
        let (lo, hi) = bisect_threshold(0.0, 1.0, 1e-12, |x| x >= threshold);
        assert!(lo < threshold && threshold <= hi);
        assert!(hi - lo <= 1e-11);
    }

    #[test]
    fn bisect_feasible_lower_bound_short_circuits() {
        let (lo, hi) = bisect_threshold(2.0, 5.0, 1e-12, |x| x >= 1.0);
        assert_eq!((lo, hi), (2.0, 2.0));
    }

    #[test]
    #[should_panic(expected = "upper bound must be feasible")]
    fn bisect_rejects_infeasible_upper_bound() {
        bisect_threshold(0.0, 1.0, 1e-12, |x| x >= 2.0);
    }

    #[test]
    fn budgeted_bisect_matches_plain_when_unlimited() {
        let threshold = 0.333_333;
        let mut meter = crate::resource::Budget::unlimited().meter();
        let (lo, hi) =
            bisect_threshold_budgeted(0.0, 1.0, 1e-12, &mut meter, |x| x >= threshold).unwrap();
        assert!(lo <= threshold && threshold <= hi + 1e-12);
        assert!(hi - lo <= 1e-12);
        assert_eq!(meter.exhausted(), None);
    }

    #[test]
    fn budgeted_bisect_returns_feasible_bracket_on_exhaustion() {
        let threshold = 0.6;
        let mut meter = crate::resource::Budget::iterations(6).meter();
        let (lo, hi) =
            bisect_threshold_budgeted(0.0, 1.0, 1e-12, &mut meter, |x| x >= threshold).unwrap();
        assert_eq!(meter.exhausted(), Some("iterations"));
        // The bracket is wide (we stopped early) but still valid: hi feasible,
        // lo infeasible.
        assert!(
            hi >= threshold,
            "upper end of a truncated bracket must stay feasible"
        );
        assert!(lo < threshold);
        assert!(hi - lo > 1e-12, "six probes cannot reach full precision");
    }

    #[test]
    fn budgeted_bisect_reports_bad_brackets_as_errors() {
        let mut meter = crate::resource::Budget::unlimited().meter();
        let infeasible_hi = bisect_threshold_budgeted(0.0, 1.0, 1e-12, &mut meter, |x| x >= 2.0);
        assert!(matches!(infeasible_hi, Err(SolveError::Numeric { .. })));
        let inverted = bisect_threshold_budgeted(1.0, 0.0, 1e-12, &mut meter, |_| true);
        assert!(matches!(inverted, Err(SolveError::Numeric { .. })));
        let nan = bisect_threshold_budgeted(f64::NAN, 1.0, 1e-12, &mut meter, |_| true);
        assert!(matches!(nan, Err(SolveError::Numeric { .. })));
    }

    #[test]
    fn margin_scales() {
        let t = Tol::rel(1e-6);
        assert!((t.margin(100.0) - 1e-4).abs() < 1e-18);
        assert_eq!(t.margin(0.0), ABS_EPS);
    }
}
