//! A small line-oriented text format for instances.
//!
//! ```text
//! # comments and blank lines are ignored
//! machines 4
//! alpha 2.0
//! job 0 1.5 0.0 3.0     # job <id> <work> <release> <deadline>
//! job 1 2.0 1.0 4.0
//! ```
//!
//! The format exists so examples and the experiment CLI can persist workloads
//! without pulling serialization dependencies into the tree. Emission is
//! round-trip exact: numbers are printed with enough digits (`{:?}` / Ryū) to
//! reparse to the identical `f64`.

use crate::error::ModelError;
use crate::instance::Instance;
use crate::job::Job;

/// Serialize an instance to the text format.
pub fn emit(instance: &Instance) -> String {
    let mut out = String::new();
    out.push_str("# speedscale instance v1\n");
    out.push_str(&format!("machines {}\n", instance.machines()));
    out.push_str(&format!("alpha {:?}\n", instance.alpha()));
    for j in instance.jobs() {
        out.push_str(&format!(
            "job {} {:?} {:?} {:?}\n",
            j.id.0, j.work, j.release, j.deadline
        ));
    }
    out
}

/// Parse the text format. Defaults: `machines 1`, `alpha 2.0` when the
/// directives are absent. Unknown directives are errors (typos should not be
/// silently ignored in experiment configs).
pub fn parse(text: &str) -> Result<Instance, ModelError> {
    let mut machines: usize = 1;
    let mut alpha: f64 = 2.0;
    let mut jobs: Vec<Job> = Vec::new();

    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        let err = |message: String| ModelError::Parse {
            line: lineno + 1,
            message,
        };
        // `line` is non-empty after trimming, so a first token must exist;
        // report a parse error rather than relying on that reasoning.
        let head = parts
            .next()
            .ok_or_else(|| err("empty directive line".into()))?;
        match head {
            "machines" => {
                let v = parts
                    .next()
                    .ok_or_else(|| err("machines needs a value".into()))?;
                machines = v
                    .parse()
                    .map_err(|_| err(format!("bad machine count '{v}'")))?;
            }
            "alpha" => {
                let v = parts
                    .next()
                    .ok_or_else(|| err("alpha needs a value".into()))?;
                alpha = v.parse().map_err(|_| err(format!("bad alpha '{v}'")))?;
            }
            "job" => {
                let fields: Vec<&str> = parts.collect();
                if fields.len() != 4 {
                    return Err(err(format!(
                        "job needs 4 fields (id work release deadline), got {}",
                        fields.len()
                    )));
                }
                let id: u32 = fields[0]
                    .parse()
                    .map_err(|_| err(format!("bad job id '{}'", fields[0])))?;
                let nums: Result<Vec<f64>, _> =
                    fields[1..].iter().map(|f| f.parse::<f64>()).collect();
                let nums = nums.map_err(|_| err("bad numeric field in job line".into()))?;
                jobs.push(Job::new(id, nums[0], nums[1], nums[2]));
            }
            other => {
                return Err(err(format!("unknown directive '{other}'")));
            }
        }
    }
    Instance::new(jobs, machines, alpha)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_is_exact() {
        let inst = Instance::new(
            vec![
                Job::new(0, 1.0 / 3.0, 0.1, 2.7),
                Job::new(1, 2.0, 1e-3, 4.0),
                Job::new(7, 0.123456789012345, 0.0, 1.0),
            ],
            4,
            2.5,
        )
        .unwrap();
        let text = emit(&inst);
        let back = parse(&text).unwrap();
        assert_eq!(back, inst);
    }

    #[test]
    fn parses_comments_defaults_and_whitespace() {
        let text = "\n# header\n  job 3 1.0 0.0 2.0  # trailing comment\n\n";
        let inst = parse(text).unwrap();
        assert_eq!(inst.machines(), 1);
        assert_eq!(inst.alpha(), 2.0);
        assert_eq!(inst.len(), 1);
        assert_eq!(inst.job(0).id.0, 3);
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(matches!(
            parse("machines"),
            Err(ModelError::Parse { line: 1, .. })
        ));
        assert!(matches!(
            parse("job 0 1.0 0.0"),
            Err(ModelError::Parse { .. })
        ));
        assert!(matches!(
            parse("job x 1.0 0.0 2.0"),
            Err(ModelError::Parse { .. })
        ));
        assert!(matches!(
            parse("frobnicate 3"),
            Err(ModelError::Parse { .. })
        ));
        assert!(matches!(
            parse("alpha banana"),
            Err(ModelError::Parse { .. })
        ));
    }

    #[test]
    fn semantic_errors_bubble_up() {
        // Parses fine but violates model invariants (work <= 0).
        assert!(matches!(
            parse("job 0 -1.0 0.0 2.0"),
            Err(ModelError::NonPositiveWork { .. })
        ));
    }

    #[test]
    fn directive_order_is_free() {
        let text = "job 0 1.0 0.0 2.0\nmachines 3\nalpha 1.5\n";
        let inst = parse(text).unwrap();
        assert_eq!(inst.machines(), 3);
        assert_eq!(inst.alpha(), 1.5);
    }

    /// Byte soup: `parse` must return `Ok` or `Err`, never panic. Each case
    /// feeds a random mix of raw bytes (lossily decoded), format keywords,
    /// numbers (including `nan`/`inf`), comments and newlines.
    #[test]
    fn parse_never_panics_on_arbitrary_input() {
        use ssp_prng::seq::SliceRandom;
        use ssp_prng::{check, Rng};
        const TOKENS: &[&str] = &[
            "machines",
            "alpha",
            "job",
            "#",
            "\n",
            " ",
            "\t",
            "-1",
            "0",
            "1e308",
            "nan",
            "inf",
            "-inf",
            "1.5",
            "0.0",
            "4294967296",
            "x",
            "💥",
            "job job",
            "1e-320",
        ];
        check::cases(300, 0x10_50, |rng| {
            let text: String = if rng.gen_bool(0.5) {
                // Raw byte soup.
                let bytes = check::vec_of(rng, 0..200, |r| r.gen_range(0u32..256) as u8);
                String::from_utf8_lossy(&bytes).into_owned()
            } else {
                // Structured-ish soup out of format fragments.
                check::vec_of(rng, 0..40, |r| {
                    *TOKENS.choose(r).expect("token list is non-empty")
                })
                .join(if rng.gen_bool(0.5) { " " } else { "\n" })
            };
            let _ = parse(&text); // must not panic
        });
    }

    /// Emit → parse is the identity on random valid instances (bit-exact,
    /// thanks to `{:?}` float formatting).
    #[test]
    fn emit_parse_roundtrip_on_random_instances() {
        use ssp_prng::{check, Rng};
        check::cases(120, 0x10_AB, |rng| {
            let jobs: Vec<Job> = check::vec_of(rng, 1..20, |r| {
                (
                    r.gen_range(1e-6f64..1e6),
                    r.gen_range(0.0f64..1e4),
                    r.gen_range(1e-6f64..1e4),
                )
            })
            .into_iter()
            .enumerate()
            .map(|(i, (w, rel, len))| Job::new(i as u32, w, rel, rel + len))
            .collect();
            let m = rng.gen_range(1usize..16);
            let alpha = rng.gen_range(1.0f64..4.0) + 1e-9;
            let inst = Instance::new(jobs, m, alpha).expect("constructed jobs are valid");
            let back = parse(&emit(&inst)).expect("emitted text must reparse");
            assert_eq!(back, inst, "round-trip changed the instance");
        });
    }
}
