//! A small line-oriented text format for instances.
//!
//! ```text
//! # comments and blank lines are ignored
//! machines 4
//! alpha 2.0
//! job 0 1.5 0.0 3.0     # job <id> <work> <release> <deadline>
//! job 1 2.0 1.0 4.0
//! ```
//!
//! The format exists so examples and the experiment CLI can persist workloads
//! without pulling serialization dependencies into the tree. Emission is
//! round-trip exact: numbers are printed with enough digits (`{:?}` / Ryū) to
//! reparse to the identical `f64`.

use crate::error::ModelError;
use crate::instance::Instance;
use crate::job::Job;

/// Serialize an instance to the text format.
pub fn emit(instance: &Instance) -> String {
    let mut out = String::new();
    out.push_str("# speedscale instance v1\n");
    out.push_str(&format!("machines {}\n", instance.machines()));
    out.push_str(&format!("alpha {:?}\n", instance.alpha()));
    for j in instance.jobs() {
        out.push_str(&format!(
            "job {} {:?} {:?} {:?}\n",
            j.id.0, j.work, j.release, j.deadline
        ));
    }
    out
}

/// Parse the text format. Defaults: `machines 1`, `alpha 2.0` when the
/// directives are absent. Unknown directives are errors (typos should not be
/// silently ignored in experiment configs).
pub fn parse(text: &str) -> Result<Instance, ModelError> {
    let mut machines: usize = 1;
    let mut alpha: f64 = 2.0;
    let mut jobs: Vec<Job> = Vec::new();

    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        let head = parts.next().unwrap();
        let err = |message: String| ModelError::Parse { line: lineno + 1, message };
        match head {
            "machines" => {
                let v = parts
                    .next()
                    .ok_or_else(|| err("machines needs a value".into()))?;
                machines = v
                    .parse()
                    .map_err(|_| err(format!("bad machine count '{v}'")))?;
            }
            "alpha" => {
                let v = parts.next().ok_or_else(|| err("alpha needs a value".into()))?;
                alpha = v.parse().map_err(|_| err(format!("bad alpha '{v}'")))?;
            }
            "job" => {
                let fields: Vec<&str> = parts.collect();
                if fields.len() != 4 {
                    return Err(err(format!(
                        "job needs 4 fields (id work release deadline), got {}",
                        fields.len()
                    )));
                }
                let id: u32 =
                    fields[0].parse().map_err(|_| err(format!("bad job id '{}'", fields[0])))?;
                let nums: Result<Vec<f64>, _> =
                    fields[1..].iter().map(|f| f.parse::<f64>()).collect();
                let nums = nums.map_err(|_| err("bad numeric field in job line".into()))?;
                jobs.push(Job::new(id, nums[0], nums[1], nums[2]));
            }
            other => {
                return Err(err(format!("unknown directive '{other}'")));
            }
        }
    }
    Instance::new(jobs, machines, alpha)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_is_exact() {
        let inst = Instance::new(
            vec![
                Job::new(0, 1.0 / 3.0, 0.1, 2.7),
                Job::new(1, 2.0, 1e-3, 4.0),
                Job::new(7, 0.123456789012345, 0.0, 1.0),
            ],
            4,
            2.5,
        )
        .unwrap();
        let text = emit(&inst);
        let back = parse(&text).unwrap();
        assert_eq!(back, inst);
    }

    #[test]
    fn parses_comments_defaults_and_whitespace() {
        let text = "\n# header\n  job 3 1.0 0.0 2.0  # trailing comment\n\n";
        let inst = parse(text).unwrap();
        assert_eq!(inst.machines(), 1);
        assert_eq!(inst.alpha(), 2.0);
        assert_eq!(inst.len(), 1);
        assert_eq!(inst.job(0).id.0, 3);
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(matches!(parse("machines"), Err(ModelError::Parse { line: 1, .. })));
        assert!(matches!(parse("job 0 1.0 0.0"), Err(ModelError::Parse { .. })));
        assert!(matches!(parse("job x 1.0 0.0 2.0"), Err(ModelError::Parse { .. })));
        assert!(matches!(parse("frobnicate 3"), Err(ModelError::Parse { .. })));
        assert!(matches!(parse("alpha banana"), Err(ModelError::Parse { .. })));
    }

    #[test]
    fn semantic_errors_bubble_up() {
        // Parses fine but violates model invariants (work <= 0).
        assert!(matches!(
            parse("job 0 -1.0 0.0 2.0"),
            Err(ModelError::NonPositiveWork { .. })
        ));
    }

    #[test]
    fn directive_order_is_free() {
        let text = "job 0 1.0 0.0 2.0\nmachines 3\nalpha 1.5\n";
        let inst = parse(text).unwrap();
        assert_eq!(inst.machines(), 3);
        assert_eq!(inst.alpha(), 1.5);
    }
}
