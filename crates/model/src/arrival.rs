//! Streaming arrival traces: the input side of the online engine.
//!
//! An *arrival trace* is the instance text format (see [`crate::io`]) with
//! one extra contract: jobs appear in **non-decreasing release order**, so a
//! consumer can process them as they are read without ever holding the whole
//! trace in memory. That is the difference between an [`crate::Instance`]
//! (a closed set of jobs, fully materialized and validated up front) and a
//! trace (an open stream — on 10^6+ jobs the reader stays O(1) in the trace
//! length).
//!
//! ```text
//! # speedscale stream trace v1
//! machines 4
//! alpha 2.0
//! job 0 1.5 0.0 3.0     # job <id> <work> <release> <deadline>
//! job 1 2.0 1.0 4.0
//! ```
//!
//! [`ArrivalReader`] parses and validates jobs one line at a time
//! (per-job invariants plus release monotonicity; duplicate-id detection is
//! deliberately *not* done here — a set of seen ids would grow with the
//! stream, and the online engine never indexes by id). [`ArrivalWriter`]
//! emits the same format with round-trip-exact numbers. Because the formats
//! coincide, any `.ssp` instance file whose jobs happen to be
//! release-sorted is a valid trace, and [`trace_of`] converts an instance
//! into one.

use crate::error::ModelError;
use crate::instance::Instance;
use crate::job::Job;
use std::io::{BufRead, Write};

/// Header of a trace: the stream-wide parameters that precede the jobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceHeader {
    /// Machine count the stream is dispatched onto.
    pub machines: usize,
    /// Power exponent.
    pub alpha: f64,
}

/// Streaming reader over an arrival trace. Construction parses the header
/// (all directives before the first `job` line); each call to
/// [`ArrivalReader::next`] (via `Iterator`) reads and validates one job.
///
/// Memory use is O(1) in the number of jobs.
pub struct ArrivalReader<R: BufRead> {
    src: R,
    lineno: usize,
    header: TraceHeader,
    last_release: f64,
    /// First job line, already parsed while scanning for the header.
    pending: Option<Job>,
    buf: String,
}

impl<R: BufRead> ArrivalReader<R> {
    /// Parse the header (directives up to and including the first `job`
    /// line). Defaults mirror [`crate::io::parse`]: `machines 1`,
    /// `alpha 2.0`.
    pub fn new(mut src: R) -> Result<Self, ModelError> {
        let mut machines = 1usize;
        let mut alpha = 2.0f64;
        let mut lineno = 0usize;
        let mut pending = None;
        let mut buf = String::new();
        loop {
            buf.clear();
            let n = src.read_line(&mut buf).map_err(|e| ModelError::Parse {
                line: lineno + 1,
                message: format!("io error: {e}"),
            })?;
            if n == 0 {
                break;
            }
            lineno += 1;
            let line = buf.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let mut parts = line.split_whitespace();
            let head = parts.next().expect("non-empty line has a token");
            match head {
                "machines" => {
                    machines = parse_field(parts.next(), lineno, "machine count")?;
                    if machines == 0 {
                        return Err(ModelError::NoMachines);
                    }
                }
                "alpha" => {
                    alpha = parse_field(parts.next(), lineno, "alpha")?;
                    if alpha.is_nan() || alpha <= 1.0 {
                        return Err(ModelError::BadAlpha { alpha });
                    }
                }
                "job" => {
                    pending = Some(parse_job(parts, lineno)?);
                    break;
                }
                other => {
                    return Err(ModelError::Parse {
                        line: lineno,
                        message: format!("unknown directive '{other}'"),
                    })
                }
            }
        }
        let mut reader = ArrivalReader {
            src,
            lineno,
            header: TraceHeader { machines, alpha },
            last_release: f64::NEG_INFINITY,
            pending: None,
            buf,
        };
        if let Some(job) = pending {
            reader.check(&job)?;
            reader.pending = Some(job);
        }
        Ok(reader)
    }

    /// The stream-wide parameters.
    pub fn header(&self) -> TraceHeader {
        self.header
    }

    /// Validate one job against the per-job invariants and the trace's
    /// release-monotonicity contract, advancing the monotonicity cursor.
    fn check(&mut self, job: &Job) -> Result<(), ModelError> {
        validate_arrival(job, self.last_release)?;
        self.last_release = job.release;
        Ok(())
    }

    fn read_one(&mut self) -> Result<Option<Job>, ModelError> {
        if let Some(job) = self.pending.take() {
            return Ok(Some(job));
        }
        loop {
            self.buf.clear();
            let n = self
                .src
                .read_line(&mut self.buf)
                .map_err(|e| ModelError::Parse {
                    line: self.lineno + 1,
                    message: format!("io error: {e}"),
                })?;
            if n == 0 {
                return Ok(None);
            }
            self.lineno += 1;
            let line = self.buf.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let mut parts = line.split_whitespace();
            let head = parts.next().expect("non-empty line has a token");
            if head != "job" {
                return Err(ModelError::Parse {
                    line: self.lineno,
                    message: format!("expected 'job' after the header, got '{head}'"),
                });
            }
            let job = parse_job(parts, self.lineno)?;
            self.check(&job)?;
            return Ok(Some(job));
        }
    }
}

impl<R: BufRead> Iterator for ArrivalReader<R> {
    type Item = Result<Job, ModelError>;
    fn next(&mut self) -> Option<Self::Item> {
        self.read_one().transpose()
    }
}

/// Per-job validation shared by the reader and any in-process producer: the
/// instance invariants (finite fields, positive work, non-empty window) plus
/// the trace contract `release >= last_release`.
pub fn validate_arrival(job: &Job, last_release: f64) -> Result<(), ModelError> {
    for (field, value) in [
        ("work", job.work),
        ("release", job.release),
        ("deadline", job.deadline),
    ] {
        if !value.is_finite() {
            return Err(ModelError::NotFinite {
                job: job.id.0,
                field,
                value,
            });
        }
    }
    if job.work <= 0.0 {
        return Err(ModelError::NonPositiveWork {
            job: job.id.0,
            work: job.work,
        });
    }
    if job.deadline <= job.release {
        return Err(ModelError::EmptyWindow {
            job: job.id.0,
            release: job.release,
            deadline: job.deadline,
        });
    }
    if job.release < last_release {
        return Err(ModelError::Parse {
            line: 0,
            message: format!(
                "job {} released at {} after the cursor already reached {} \
                 (arrival traces must be release-sorted)",
                job.id, job.release, last_release
            ),
        });
    }
    Ok(())
}

/// Streaming writer: emits the header eagerly, then one `job` line per
/// [`ArrivalWriter::push`]. Numbers round-trip exactly (Ryū `{:?}`).
pub struct ArrivalWriter<W: Write> {
    dst: W,
    last_release: f64,
}

impl<W: Write> ArrivalWriter<W> {
    /// Write the header and return the writer.
    pub fn new(mut dst: W, machines: usize, alpha: f64) -> std::io::Result<Self> {
        writeln!(dst, "# speedscale stream trace v1")?;
        writeln!(dst, "machines {machines}")?;
        writeln!(dst, "alpha {alpha:?}")?;
        Ok(ArrivalWriter {
            dst,
            last_release: f64::NEG_INFINITY,
        })
    }

    /// Append one arrival. Enforces the same contract the reader checks, so
    /// a writer can never produce a trace its reader rejects.
    pub fn push(&mut self, job: &Job) -> std::io::Result<()> {
        validate_arrival(job, self.last_release)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidInput, e.to_string()))?;
        self.last_release = job.release;
        writeln!(
            self.dst,
            "job {} {:?} {:?} {:?}",
            job.id.0, job.work, job.release, job.deadline
        )
    }

    /// Flush and hand back the sink.
    pub fn finish(mut self) -> std::io::Result<W> {
        self.dst.flush()?;
        Ok(self.dst)
    }
}

/// Serialize an instance as an arrival trace: identical text format, jobs
/// sorted by (release, id) so the result satisfies the streaming contract.
pub fn trace_of(instance: &Instance) -> String {
    let mut order: Vec<usize> = (0..instance.len()).collect();
    order.sort_by(|&a, &b| {
        let (ja, jb) = (instance.job(a), instance.job(b));
        ja.release.total_cmp(&jb.release).then(ja.id.cmp(&jb.id))
    });
    let mut out = Vec::new();
    let mut w = ArrivalWriter::new(&mut out, instance.machines(), instance.alpha())
        .expect("vec writes are infallible");
    for &i in &order {
        w.push(instance.job(i)).expect("vec writes are infallible");
    }
    w.finish().expect("vec writes are infallible");
    String::from_utf8(out).expect("trace text is ascii")
}

fn parse_field<T: std::str::FromStr>(
    tok: Option<&str>,
    line: usize,
    what: &str,
) -> Result<T, ModelError> {
    let tok = tok.ok_or_else(|| ModelError::Parse {
        line,
        message: format!("missing {what}"),
    })?;
    tok.parse().map_err(|_| ModelError::Parse {
        line,
        message: format!("bad {what} '{tok}'"),
    })
}

fn parse_job<'a>(mut parts: impl Iterator<Item = &'a str>, line: usize) -> Result<Job, ModelError> {
    let id: u32 = parse_field(parts.next(), line, "job id")?;
    let work: f64 = parse_field(parts.next(), line, "work")?;
    let release: f64 = parse_field(parts.next(), line, "release")?;
    let deadline: f64 = parse_field(parts.next(), line, "deadline")?;
    if parts.next().is_some() {
        return Err(ModelError::Parse {
            line,
            message: "trailing tokens after job fields".into(),
        });
    }
    Ok(Job::new(id, work, release, deadline))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn read_all(text: &str) -> Result<(TraceHeader, Vec<Job>), ModelError> {
        let mut r = ArrivalReader::new(BufReader::new(text.as_bytes()))?;
        let header = r.header();
        let mut jobs = Vec::new();
        for j in &mut r {
            jobs.push(j?);
        }
        Ok((header, jobs))
    }

    #[test]
    fn round_trip_is_exact() {
        let inst = Instance::new(
            vec![
                Job::new(3, 0.1 + 0.2, 1.0 / 3.0, 2.0),
                Job::new(1, 1.5, 0.0, 3.0),
            ],
            4,
            2.5,
        )
        .unwrap();
        let text = trace_of(&inst);
        let (header, jobs) = read_all(&text).unwrap();
        assert_eq!(
            header,
            TraceHeader {
                machines: 4,
                alpha: 2.5
            }
        );
        // trace_of sorts by release: job 1 (r=0) before job 3 (r=1/3).
        assert_eq!(jobs[0].id.0, 1);
        assert_eq!(jobs[1].id.0, 3);
        assert_eq!(jobs[1].work.to_bits(), (0.1f64 + 0.2).to_bits());
        assert_eq!(jobs[1].release.to_bits(), (1.0f64 / 3.0).to_bits());
    }

    #[test]
    fn header_defaults_match_instance_format() {
        let (header, jobs) = read_all("job 0 1.0 0.0 1.0\n").unwrap();
        assert_eq!(
            header,
            TraceHeader {
                machines: 1,
                alpha: 2.0
            }
        );
        assert_eq!(jobs.len(), 1);
    }

    #[test]
    fn out_of_order_releases_are_rejected() {
        let text = "machines 2\njob 0 1.0 5.0 6.0\njob 1 1.0 4.0 9.0\n";
        let mut r = ArrivalReader::new(text.as_bytes()).unwrap();
        assert!(r.next().unwrap().is_ok());
        assert!(r.next().unwrap().is_err());
    }

    #[test]
    fn invalid_jobs_are_rejected_with_the_model_error() {
        for bad in [
            "job 0 0.0 0.0 1.0",   // zero work
            "job 0 1.0 2.0 2.0",   // empty window
            "job 0 nan 0.0 1.0",   // non-finite
            "job 0 1.0 0.0 1.0 9", // trailing token
            "jobb 0 1.0 0.0 1.0",  // unknown directive
        ] {
            assert!(read_all(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn writer_refuses_out_of_order_pushes() {
        let mut w = ArrivalWriter::new(Vec::new(), 1, 2.0).unwrap();
        w.push(&Job::new(0, 1.0, 3.0, 4.0)).unwrap();
        assert!(w.push(&Job::new(1, 1.0, 2.0, 5.0)).is_err());
    }

    #[test]
    fn comments_and_blanks_are_ignored_everywhere() {
        let text = "# header comment\n\nmachines 3\n# mid\nalpha 2.25\n\n\
                    job 0 1.0 0.0 2.0 # inline\n\njob 1 2.0 1.0 4.0\n";
        let (header, jobs) = read_all(text).unwrap();
        assert_eq!(header.machines, 3);
        assert_eq!(header.alpha, 2.25);
        assert_eq!(jobs.len(), 2);
    }
}
