//! Scoped-thread parallel map with a controllable thread count.
//!
//! Solver kernels (and the experiment harness) are embarrassingly parallel
//! over independent items. Rather than pull in a thread-pool crate, a single
//! `std::thread::scope` with an atomic work index gives the same
//! data-race-free fan-out (the borrow checker enforces that `f` only
//! captures `Sync` state): each worker claims indices from a shared counter,
//! so uneven item costs balance automatically.
//!
//! ## Thread count, and why callers may pin it
//!
//! The fan-out width is [`thread_count`]: an in-process override
//! ([`set_thread_override`]) if set, else the `SSP_THREADS` environment
//! variable, else [`std::thread::available_parallelism`]. Solver code using
//! [`par_map`] is required to produce **bit-identical results at any thread
//! count** (parallelism may only change *wall time*, never a transcript —
//! see the BAL probe ladder in `ssp-migratory`); the differential test walls
//! replay the same instance under several pinned widths to enforce exactly
//! that. Tests pin the width with [`set_thread_override`] rather than
//! `std::env::set_var`, which is unsound under a multi-threaded test runner.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// In-process override for [`thread_count`]: `0` = unset, otherwise the
/// pinned width. A process-global relaxed atomic — the value is a tuning
/// knob, not a synchronization point.
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Pin (`Some(width)`) or release (`None`) the [`par_map`] fan-out width for
/// the whole process, taking precedence over `SSP_THREADS`. A width of
/// `Some(0)` is treated as `Some(1)`. Returns the previous override so tests
/// can restore it.
pub fn set_thread_override(width: Option<usize>) -> Option<usize> {
    let raw = match width {
        Some(0) => 1,
        Some(w) => w,
        None => 0,
    };
    let prev = THREAD_OVERRIDE.swap(raw, Ordering::Relaxed);
    if prev == 0 {
        None
    } else {
        Some(prev)
    }
}

/// The fan-out width [`par_map`] will use for a long-enough input:
/// the [`set_thread_override`] value if set, else `SSP_THREADS` (ignored
/// unless it parses to a positive integer), else
/// [`std::thread::available_parallelism`].
pub fn thread_count() -> usize {
    let pinned = THREAD_OVERRIDE.load(Ordering::Relaxed);
    if pinned > 0 {
        return pinned;
    }
    if let Ok(s) = std::env::var("SSP_THREADS") {
        if let Ok(n) = s.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
}

/// Apply `f` to every item on [`thread_count`] threads; results keep input
/// order.
///
/// Telemetry: each worker adopts the calling thread's innermost open probe
/// span ([`ssp_probe::Session::adopt_parent`]), so spans opened inside `f`
/// attach to the caller's span tree instead of becoming disconnected roots.
/// This is sound because the scope joins every worker before `par_map`
/// returns — the adopted parent span cannot close while workers run.
pub fn par_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = thread_count().min(n);
    if threads == 1 {
        return items.iter().map(&f).collect();
    }
    let parent = ssp_probe::Session::parent_handle();
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let _adopt = ssp_probe::Session::adopt_parent(parent);
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let r = f(&items[i]);
                        *slots[i].lock().unwrap() = Some(r);
                    }
                })
            })
            .collect();
        // Join manually: `scope` alone would replace a worker's panic
        // payload with a generic "a scoped thread panicked". Re-raising the
        // first payload makes `f`'s panic observable to the caller exactly
        // as in the sequential path (and no slot is silently left `None`).
        let mut first_panic = None;
        for handle in handles {
            if let Err(payload) = handle.join() {
                first_panic.get_or_insert(payload);
            }
        }
        if let Some(payload) = first_panic {
            std::panic::resume_unwind(payload);
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap()
                .expect("worker filled every claimed slot")
        })
        .collect()
}

/// [`par_map`] over *mutable* items: apply `f` to every element of `items`
/// in parallel, each worker owning a disjoint contiguous chunk; results keep
/// input order.
///
/// This is the scratch-reuse variant the BAL probe ladder needs: each item
/// carries its own warm solver state (a pre-cloned probe slot), so `f` can
/// mutate it without any cross-item sharing. For results to be
/// **thread-count invariant** the caller must uphold the same contract as
/// the items' construction: `f(&mut items[i])`'s result may depend only on
/// `items[i]`'s value at entry, never on which worker ran it or in what
/// order (the chunk partition changes with the width).
pub fn par_map_mut<T, R, F>(items: &mut [T], f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(&mut T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = thread_count().min(n);
    if threads == 1 {
        return items.iter_mut().map(&f).collect();
    }
    let parent = ssp_probe::Session::parent_handle();
    let chunk = n.div_ceil(threads);
    let mut results: Vec<R> = Vec::with_capacity(n);
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks_mut(chunk)
            .map(|chunk| {
                scope.spawn(|| {
                    let _adopt = ssp_probe::Session::adopt_parent(parent);
                    chunk.iter_mut().map(&f).collect::<Vec<R>>()
                })
            })
            .collect();
        // Join in spawn (= input) order, re-raising the first panic payload
        // as in [`par_map`].
        let mut first_panic = None;
        for handle in handles {
            match handle.join() {
                Ok(part) => results.extend(part),
                Err(payload) => {
                    first_panic.get_or_insert(payload);
                }
            }
        }
        if let Some(payload) = first_panic {
            std::panic::resume_unwind(payload);
        }
    });
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn preserves_order() {
        let out = par_map((0..100).collect(), |&x| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input() {
        let out: Vec<i32> = par_map(Vec::<i32>::new(), |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn runs_every_item_exactly_once() {
        static CALLS: AtomicUsize = AtomicUsize::new(0);
        let _ = par_map((0..57).collect::<Vec<i32>>(), |_| {
            CALLS.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(CALLS.load(Ordering::Relaxed), 57);
    }

    #[test]
    fn worker_panic_propagates_with_its_payload() {
        let result = std::panic::catch_unwind(|| {
            par_map((0..64).collect::<Vec<i32>>(), |&x| {
                if x == 13 {
                    panic!("boom at 13");
                }
                x * 2
            })
        });
        let payload = result.expect_err("panic in `f` must propagate to the caller");
        let message = payload
            .downcast_ref::<&str>()
            .copied()
            .map(str::to_string)
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(
            message.contains("boom at 13"),
            "original payload must survive, got: {message:?}"
        );
    }

    #[test]
    fn uneven_work_is_balanced() {
        // Just a smoke test that heavy items don't break ordering.
        let out = par_map(vec![30u64, 1, 25, 2, 20], |&ms| {
            let mut acc = 0u64;
            for i in 0..(ms * 100_000) {
                acc = acc.wrapping_add(i);
            }
            (ms, acc != u64::MAX)
        });
        let keys: Vec<u64> = out.iter().map(|&(k, _)| k).collect();
        assert_eq!(keys, vec![30, 1, 25, 2, 20]);
    }

    #[test]
    fn override_pins_thread_count_and_restores() {
        // Note: `thread_count` also reads SSP_THREADS, but the override has
        // precedence, so this test is safe under a multi-threaded runner as
        // long as every test touching the override restores it (they do —
        // the knob exists precisely to avoid `std::env::set_var` races).
        let prev = set_thread_override(Some(3));
        assert_eq!(thread_count(), 3);
        // 0 is normalized away: treated as "1 thread", not "unset".
        set_thread_override(Some(0));
        assert_eq!(thread_count(), 1);
        set_thread_override(prev);
    }

    #[test]
    fn parallel_width_does_not_change_results() {
        let items: Vec<u64> = (0..200).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * x + 1).collect();
        for width in [1usize, 2, 8] {
            let prev = set_thread_override(Some(width));
            let got = par_map(items.clone(), |&x| x * x + 1);
            set_thread_override(prev);
            assert_eq!(got, expect, "width {width}");
        }
    }

    #[test]
    fn par_map_mut_mutates_in_place_and_keeps_order() {
        for width in [1usize, 2, 8] {
            let prev = set_thread_override(Some(width));
            let mut items: Vec<(u64, u64)> = (0..37).map(|x| (x, 0)).collect();
            let out = par_map_mut(&mut items, |item| {
                item.1 = item.0 * 3;
                item.1 + 1
            });
            set_thread_override(prev);
            assert_eq!(out, (0..37).map(|x| x * 3 + 1).collect::<Vec<_>>());
            assert!(items.iter().all(|&(x, y)| y == x * 3), "width {width}");
        }
    }

    #[test]
    fn par_map_mut_empty_input() {
        let out: Vec<i32> = par_map_mut(&mut [] as &mut [i32], |&mut x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn par_map_mut_panic_propagates() {
        let result = std::panic::catch_unwind(|| {
            let mut items: Vec<i32> = (0..64).collect();
            par_map_mut(&mut items, |&mut x| {
                if x == 7 {
                    panic!("boom at 7");
                }
                x
            })
        });
        assert!(result.is_err(), "panic in `f` must propagate");
    }
}
