//! Explicit schedules and the audited validator.
//!
//! A [`Schedule`] is a bag of [`Segment`]s — "job `i` runs on machine `p`
//! during `[a, b]` at speed `s`". All algorithm crates produce this type, and
//! all experimental claims about energy/feasibility are made through
//! [`Schedule::validate`] / [`Schedule::energy`], so there is exactly one
//! arbiter of correctness in the workspace.

use crate::error::ValidationError;
use crate::instance::Instance;
use crate::job::JobId;
use crate::numeric::{pow_alpha, Tol};
use crate::Time;
use std::collections::HashMap;

/// One maximal piece of uninterrupted execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    /// The job being executed.
    pub job: JobId,
    /// Machine index in `0..m`.
    pub machine: usize,
    /// Start instant.
    pub start: Time,
    /// End instant (`> start`).
    pub end: Time,
    /// Constant execution speed over the segment (`> 0`).
    pub speed: f64,
}

impl Segment {
    /// Duration `end - start`.
    #[inline]
    pub fn len(&self) -> Time {
        self.end - self.start
    }

    /// Work processed: `speed * len`.
    #[inline]
    pub fn work(&self) -> f64 {
        self.speed * self.len()
    }

    /// Energy consumed: `speed^alpha * len`.
    #[inline]
    pub fn energy(&self, alpha: f64) -> f64 {
        pow_alpha(self.speed, alpha) * self.len()
    }
}

/// Options for [`Schedule::validate`].
#[derive(Debug, Clone, Copy)]
pub struct ValidationOptions {
    /// Tolerance for window containment / overlap checks.
    pub tol: Tol,
    /// Tolerance for per-job total-work conservation (accumulated quantity,
    /// hence looser by default).
    pub work_tol: Tol,
    /// Additionally require every job to stay on a single machine
    /// (the non-migratory model of the target paper).
    pub require_non_migratory: bool,
}

impl Default for ValidationOptions {
    fn default() -> Self {
        ValidationOptions {
            tol: Tol::default(),
            work_tol: Tol::loose(),
            require_non_migratory: false,
        }
    }
}

impl ValidationOptions {
    /// Default options plus the non-migratory requirement.
    pub fn non_migratory() -> Self {
        ValidationOptions {
            require_non_migratory: true,
            ..Default::default()
        }
    }
}

/// Summary statistics returned by a successful validation.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleStats {
    /// Total energy `Σ s^alpha · len`.
    pub energy: f64,
    /// Last completion instant (0 for empty schedules).
    pub makespan: Time,
    /// Number of job resumptions on a *different* machine.
    pub migrations: usize,
    /// Number of interruptions (resumption after a gap or on another machine).
    pub preemptions: usize,
    /// Busy time per machine.
    pub busy: Vec<Time>,
    /// Fastest speed used anywhere.
    pub max_speed: f64,
}

/// An explicit multiprocessor schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct Schedule {
    machines: usize,
    segments: Vec<Segment>,
}

impl Schedule {
    /// An empty schedule on `machines` machines.
    pub fn new(machines: usize) -> Self {
        Schedule {
            machines,
            segments: Vec::new(),
        }
    }

    /// Build from pre-existing segments.
    pub fn from_segments(machines: usize, segments: Vec<Segment>) -> Self {
        Schedule { machines, segments }
    }

    /// Append one segment. Zero/negative-length segments are silently dropped
    /// so producers can emit degenerate pieces without special-casing.
    pub fn push(&mut self, seg: Segment) {
        if seg.end > seg.start {
            self.segments.push(seg);
        }
    }

    /// Convenience for `push(Segment { .. })`.
    pub fn run(&mut self, job: JobId, machine: usize, start: Time, end: Time, speed: f64) {
        self.push(Segment {
            job,
            machine,
            start,
            end,
            speed,
        });
    }

    /// The machine count this schedule believes it uses.
    #[inline]
    pub fn machines(&self) -> usize {
        self.machines
    }

    /// All segments, in insertion order.
    #[inline]
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Number of segments.
    #[inline]
    pub fn len(&self) -> usize {
        self.segments.len()
    }

    /// `true` if no segments.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// Total energy under power `s^alpha`.
    pub fn energy(&self, alpha: f64) -> f64 {
        self.segments.iter().map(|s| s.energy(alpha)).sum()
    }

    /// Total work scheduled for one job.
    pub fn work_of(&self, job: JobId) -> f64 {
        self.segments
            .iter()
            .filter(|s| s.job == job)
            .map(|s| s.work())
            .sum()
    }

    /// Latest end instant (0 when empty).
    pub fn makespan(&self) -> Time {
        self.segments.iter().map(|s| s.end).fold(0.0, f64::max)
    }

    /// Busy time of each machine.
    pub fn busy_times(&self) -> Vec<Time> {
        let mut busy = vec![0.0; self.machines];
        for s in &self.segments {
            if s.machine < self.machines {
                busy[s.machine] += s.len();
            }
        }
        busy
    }

    /// Merge adjacent segments of the same job on the same machine with the
    /// same speed (within `tol`), producing a minimal segment list. Sorts
    /// segments by `(machine, start)`.
    pub fn coalesce(&mut self, tol: Tol) {
        self.segments
            .sort_by(|a, b| a.machine.cmp(&b.machine).then(a.start.total_cmp(&b.start)));
        let mut out: Vec<Segment> = Vec::with_capacity(self.segments.len());
        for s in self.segments.drain(..) {
            match out.last_mut() {
                Some(last)
                    if last.machine == s.machine
                        && last.job == s.job
                        && tol.eq(last.end, s.start)
                        && tol.eq(last.speed, s.speed) =>
                {
                    last.end = s.end;
                }
                _ => out.push(s),
            }
        }
        self.segments = out;
    }

    /// Check every model constraint against `instance` and return summary
    /// statistics. See [`ValidationError`] for the violation catalogue.
    pub fn validate(
        &self,
        instance: &Instance,
        opts: ValidationOptions,
    ) -> Result<ScheduleStats, ValidationError> {
        let _span = ssp_probe::span("validate");
        ssp_probe::counter!("validate.calls");
        let tol = opts.tol;
        // Per-segment checks.
        for s in &self.segments {
            let job = instance
                .job_by_id(s.job)
                .ok_or(ValidationError::UnknownJob { job: s.job.0 })?;
            if s.machine >= instance.machines() {
                return Err(ValidationError::BadMachine {
                    machine: s.machine,
                    machines: instance.machines(),
                });
            }
            // NaN endpoints fail this check (the comparison is false for them).
            let increasing = s.end > s.start;
            if !increasing {
                return Err(ValidationError::EmptySegment {
                    job: s.job.0,
                    start: s.start,
                    end: s.end,
                });
            }
            let speed_ok = s.speed > 0.0 && s.speed.is_finite();
            if !speed_ok {
                return Err(ValidationError::BadSpeed {
                    job: s.job.0,
                    speed: s.speed,
                });
            }
            let scale = job.deadline.abs().max(job.release.abs()).max(1.0);
            let margin = tol.margin(scale);
            if s.start < job.release - margin || s.end > job.deadline + margin {
                return Err(ValidationError::OutsideWindow {
                    job: s.job.0,
                    start: s.start,
                    end: s.end,
                    release: job.release,
                    deadline: job.deadline,
                });
            }
        }

        // Machine-overlap check: sort per machine by start.
        let mut by_machine: Vec<Vec<&Segment>> = vec![Vec::new(); self.machines.max(1)];
        for s in &self.segments {
            by_machine[s.machine].push(s);
        }
        for (machine, segs) in by_machine.iter_mut().enumerate() {
            segs.sort_by(|a, b| a.start.total_cmp(&b.start));
            for w in segs.windows(2) {
                let margin = tol.margin(w[0].end.abs().max(1.0));
                if w[1].start < w[0].end - margin {
                    return Err(ValidationError::MachineOverlap {
                        machine,
                        job_a: w[0].job.0,
                        job_b: w[1].job.0,
                        at: w[1].start,
                    });
                }
            }
        }

        // Self-overlap (parallel execution of one job) across machines, plus
        // migration/preemption counting.
        let mut by_job: HashMap<JobId, Vec<&Segment>> = HashMap::new();
        for s in &self.segments {
            by_job.entry(s.job).or_default().push(s);
        }
        let mut migrations = 0usize;
        let mut preemptions = 0usize;
        for (job, segs) in by_job.iter_mut() {
            segs.sort_by(|a, b| a.start.total_cmp(&b.start));
            for w in segs.windows(2) {
                let margin = tol.margin(w[0].end.abs().max(1.0));
                if w[1].start < w[0].end - margin {
                    return Err(ValidationError::SelfOverlap {
                        job: job.0,
                        at: w[1].start,
                    });
                }
                let moved = w[0].machine != w[1].machine;
                if moved {
                    migrations += 1;
                    if opts.require_non_migratory {
                        return Err(ValidationError::Migrated {
                            job: job.0,
                            machine_a: w[0].machine,
                            machine_b: w[1].machine,
                        });
                    }
                }
                if moved || w[1].start > w[0].end + margin {
                    preemptions += 1;
                }
            }
        }

        // Work conservation per job (also catches completely unscheduled jobs).
        for job in instance.jobs() {
            let scheduled = self.work_of(job.id);
            if !opts.work_tol.eq(scheduled, job.work) {
                return Err(ValidationError::WorkMismatch {
                    job: job.id.0,
                    scheduled,
                    required: job.work,
                });
            }
        }

        Ok(ScheduleStats {
            energy: self.energy(instance.alpha()),
            makespan: self.makespan(),
            migrations,
            preemptions,
            busy: self.busy_times(),
            max_speed: self.segments.iter().map(|s| s.speed).fold(0.0, f64::max),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::Job;

    fn inst2() -> Instance {
        Instance::new(
            vec![Job::new(0, 1.0, 0.0, 2.0), Job::new(1, 2.0, 0.0, 2.0)],
            2,
            2.0,
        )
        .unwrap()
    }

    #[test]
    fn valid_schedule_passes_and_reports_stats() {
        let inst = inst2();
        let mut s = Schedule::new(2);
        s.run(JobId(0), 0, 0.0, 2.0, 0.5);
        s.run(JobId(1), 1, 0.0, 2.0, 1.0);
        let stats = s
            .validate(&inst, ValidationOptions::non_migratory())
            .unwrap();
        // E = 2*0.25 + 2*1 = 2.5 at alpha=2.
        assert!((stats.energy - 2.5).abs() < 1e-12);
        assert_eq!(stats.makespan, 2.0);
        assert_eq!(stats.migrations, 0);
        assert_eq!(stats.preemptions, 0);
        assert_eq!(stats.busy, vec![2.0, 2.0]);
        assert_eq!(stats.max_speed, 1.0);
    }

    #[test]
    fn rejects_unknown_job_and_bad_machine() {
        let inst = inst2();
        let mut s = Schedule::new(2);
        s.run(JobId(9), 0, 0.0, 1.0, 1.0);
        assert!(matches!(
            s.validate(&inst, Default::default()),
            Err(ValidationError::UnknownJob { job: 9 })
        ));

        let mut s = Schedule::new(2);
        s.run(JobId(0), 5, 0.0, 1.0, 1.0);
        assert!(matches!(
            s.validate(&inst, Default::default()),
            Err(ValidationError::BadMachine {
                machine: 5,
                machines: 2
            })
        ));
    }

    #[test]
    fn rejects_window_violation() {
        let inst = inst2();
        let mut s = Schedule::new(2);
        s.run(JobId(0), 0, 0.0, 2.5, 0.4); // past deadline 2.0
        assert!(matches!(
            s.validate(&inst, Default::default()),
            Err(ValidationError::OutsideWindow { job: 0, .. })
        ));
    }

    #[test]
    fn rejects_machine_overlap() {
        let inst = inst2();
        let mut s = Schedule::new(2);
        s.run(JobId(0), 0, 0.0, 1.5, 1.0);
        s.run(JobId(1), 0, 1.0, 2.0, 2.0);
        assert!(matches!(
            s.validate(&inst, Default::default()),
            Err(ValidationError::MachineOverlap { machine: 0, .. })
        ));
    }

    #[test]
    fn rejects_parallel_self_execution() {
        let inst = inst2();
        let mut s = Schedule::new(2);
        // Job 0 on two machines at once.
        s.run(JobId(0), 0, 0.0, 1.0, 0.5);
        s.run(JobId(0), 1, 0.5, 1.5, 0.5);
        s.run(JobId(1), 1, 1.5, 2.0, 4.0);
        assert!(matches!(
            s.validate(&inst, Default::default()),
            Err(ValidationError::SelfOverlap { job: 0, .. })
        ));
    }

    #[test]
    fn rejects_work_mismatch_and_missing_job() {
        let inst = inst2();
        let mut s = Schedule::new(2);
        s.run(JobId(0), 0, 0.0, 2.0, 0.5);
        // Job 1 never scheduled.
        assert!(matches!(
            s.validate(&inst, Default::default()),
            Err(ValidationError::WorkMismatch { job: 1, .. })
        ));
    }

    #[test]
    fn migration_allowed_unless_required_not_to() {
        let inst = inst2();
        let mut s = Schedule::new(2);
        s.run(JobId(0), 0, 0.0, 1.0, 0.5);
        s.run(JobId(0), 1, 1.0, 2.0, 0.5);
        s.run(JobId(1), 1, 0.0, 1.0, 1.0);
        s.run(JobId(1), 0, 1.0, 2.0, 1.0);
        let stats = s.validate(&inst, Default::default()).unwrap();
        assert_eq!(stats.migrations, 2);
        assert_eq!(stats.preemptions, 2);
        assert!(matches!(
            s.validate(&inst, ValidationOptions::non_migratory()),
            Err(ValidationError::Migrated { .. })
        ));
    }

    #[test]
    fn zero_length_pushes_are_dropped() {
        let mut s = Schedule::new(1);
        s.run(JobId(0), 0, 1.0, 1.0, 1.0);
        assert!(s.is_empty());
    }

    #[test]
    fn coalesce_merges_contiguous_equal_speed_runs() {
        let mut s = Schedule::new(1);
        s.run(JobId(0), 0, 0.0, 1.0, 2.0);
        s.run(JobId(0), 0, 1.0, 2.0, 2.0);
        s.run(JobId(0), 0, 2.0, 3.0, 1.0); // speed change: kept separate
        s.coalesce(Tol::default());
        assert_eq!(s.len(), 2);
        assert_eq!(s.segments()[0].end, 2.0);
        // Energy must be unchanged by coalescing.
        assert!((s.energy(2.0) - (2.0 * 4.0 + 1.0)).abs() < 1e-12);
    }

    #[test]
    fn preemption_counts_gap_on_same_machine() {
        let inst = Instance::new(vec![Job::new(0, 1.0, 0.0, 4.0)], 1, 2.0).unwrap();
        let mut s = Schedule::new(1);
        s.run(JobId(0), 0, 0.0, 1.0, 0.5);
        s.run(JobId(0), 0, 3.0, 4.0, 0.5);
        let stats = s.validate(&inst, Default::default()).unwrap();
        assert_eq!(stats.preemptions, 1);
        assert_eq!(stats.migrations, 0);
    }

    #[test]
    fn energy_sums_segments() {
        let mut s = Schedule::new(2);
        s.run(JobId(0), 0, 0.0, 2.0, 3.0);
        s.run(JobId(1), 1, 0.0, 1.0, 2.0);
        // alpha=3: 2*27 + 1*8 = 62.
        assert!((s.energy(3.0) - 62.0).abs() < 1e-12);
        assert_eq!(s.work_of(JobId(0)), 6.0);
        assert_eq!(s.work_of(JobId(1)), 2.0);
        assert_eq!(s.work_of(JobId(7)), 0.0);
    }
}
