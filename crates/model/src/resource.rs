//! Resource budgets for iterative solvers.
//!
//! The expensive loops in the workspace — BAL's critical-speed peeling, the
//! bisections in [`crate::numeric`], the assignment local search — must stay
//! total even on adversarial inputs. A [`Budget`] caps how much work such a
//! loop may do (iteration count, wall-clock time, or both); a [`Meter`] is
//! the running counter a loop charges as it goes. Exhaustion is *not* an
//! error by itself: loops are expected to stop charging, keep their best
//! feasible answer so far, and report the exhaustion upward (typically as a
//! [`crate::error::SolveError::BudgetExhausted`] marker or a flag on the
//! result), so a capped run still yields a valid, merely suboptimal result.

use std::time::{Duration, Instant};

/// Caps on the work an iterative solver may perform. `None` means
/// unlimited in that dimension.
#[derive(Debug, Clone, Copy, Default)]
pub struct Budget {
    /// Maximum number of charged iterations.
    pub max_iterations: Option<u64>,
    /// Maximum wall-clock time from the first charge.
    pub max_time: Option<Duration>,
}

impl Budget {
    /// No caps: meters never exhaust.
    pub fn unlimited() -> Self {
        Budget::default()
    }

    /// Cap iterations only.
    pub fn iterations(n: u64) -> Self {
        Budget {
            max_iterations: Some(n),
            max_time: None,
        }
    }

    /// Cap wall-clock time only.
    pub fn time(d: Duration) -> Self {
        Budget {
            max_iterations: None,
            max_time: Some(d),
        }
    }

    /// Add/replace a wall-clock cap on an existing budget.
    pub fn with_time(self, d: Duration) -> Self {
        Budget {
            max_time: Some(d),
            ..self
        }
    }

    /// Start metering against this budget.
    pub fn meter(&self) -> Meter {
        Meter {
            budget: *self,
            start: Instant::now(),
            used: 0,
            exhausted: None,
        }
    }
}

/// Running consumption against a [`Budget`]. Cheap to charge: the clock is
/// only consulted when a time cap is set.
#[derive(Debug, Clone)]
pub struct Meter {
    budget: Budget,
    start: Instant,
    used: u64,
    exhausted: Option<&'static str>,
}

impl Meter {
    /// Charge one iteration. Returns `true` while budget remains; once it
    /// returns `false` it keeps returning `false` (exhaustion latches).
    pub fn tick(&mut self) -> bool {
        self.charge(1)
    }

    /// Charge `n` iterations at once.
    pub fn charge(&mut self, n: u64) -> bool {
        if self.exhausted.is_some() {
            return false;
        }
        self.used = self.used.saturating_add(n);
        if let Some(cap) = self.budget.max_iterations {
            if self.used > cap {
                self.exhausted = Some("iterations");
                return false;
            }
        }
        if let Some(cap) = self.budget.max_time {
            if self.start.elapsed() > cap {
                self.exhausted = Some("time");
                return false;
            }
        }
        true
    }

    /// Which budget ran out, if any (`"iterations"` or `"time"`).
    pub fn exhausted(&self) -> Option<&'static str> {
        self.exhausted
    }

    /// Iterations charged so far.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Convert an exhausted meter into the standard error marker;
    /// `context` says where the budget ran out and what was salvaged.
    pub fn exhaustion_error(&self, context: &str) -> Option<crate::error::SolveError> {
        self.exhausted
            .map(|resource| crate::error::SolveError::BudgetExhausted {
                resource,
                message: format!("{context} (after {} iterations)", self.used),
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_exhausts() {
        let mut m = Budget::unlimited().meter();
        for _ in 0..10_000 {
            assert!(m.tick());
        }
        assert_eq!(m.exhausted(), None);
        assert_eq!(m.used(), 10_000);
    }

    #[test]
    fn iteration_cap_latches() {
        let mut m = Budget::iterations(3).meter();
        assert!(m.tick());
        assert!(m.tick());
        assert!(m.tick());
        assert!(!m.tick(), "fourth tick must exceed a cap of 3");
        assert!(!m.tick(), "exhaustion must latch");
        assert_eq!(m.exhausted(), Some("iterations"));
        let err = m.exhaustion_error("probe").unwrap();
        assert_eq!(err.kind(), "budget-exhausted");
        assert!(err.to_string().contains("probe"));
    }

    #[test]
    fn time_cap_trips() {
        let mut m = Budget::time(Duration::ZERO).meter();
        std::thread::sleep(Duration::from_millis(1));
        assert!(!m.tick());
        assert_eq!(m.exhausted(), Some("time"));
    }

    #[test]
    fn bulk_charge_counts() {
        let mut m = Budget::iterations(10).meter();
        assert!(m.charge(10));
        assert!(!m.charge(1));
        assert_eq!(m.used(), 11);
    }
}
