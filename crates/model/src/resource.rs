//! Resource budgets and cooperative cancellation for iterative solvers.
//!
//! The expensive loops in the workspace — BAL's critical-speed peeling, the
//! bisections in [`crate::numeric`], the assignment local search — must stay
//! total even on adversarial inputs. A [`Budget`] caps how much work such a
//! loop may do (iteration count, wall-clock time, or both); a [`Meter`] is
//! the running counter a loop charges as it goes. Exhaustion is *not* an
//! error by itself: loops are expected to stop charging, keep their best
//! feasible answer so far, and report the exhaustion upward (typically as a
//! [`crate::error::SolveError::BudgetExhausted`] marker or a flag on the
//! result), so a capped run still yields a valid, merely suboptimal result.
//!
//! Long-running callers (the `ssp serve` daemon, one-shot solves with
//! `--timeout-ms`) additionally need *external* interruption: a [`Budget`]
//! can carry an absolute [`Budget::deadline`] (shared across every solver
//! phase of one request, unlike the per-meter `max_time`) and a
//! [`CancelToken`] flipped from another thread. Both are checked by every
//! [`Meter::charge`], so any budget-aware loop doubles as a cooperative
//! cancellation checkpoint; exhaustion reports as the `"deadline"` /
//! `"cancelled"` resources and follows the same best-so-far contract.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A shared cooperative cancellation flag. Cheap to clone (one `Arc`) and
/// cheap to poll (one relaxed atomic load); once cancelled it stays
/// cancelled. Attach it to a [`Budget`] so every metered loop observes it.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, not-yet-cancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Request cancellation. Idempotent; visible to all clones.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// Has [`CancelToken::cancel`] been called on any clone?
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// Caps on the work an iterative solver may perform. `None` means
/// unlimited in that dimension.
#[derive(Debug, Clone, Default)]
pub struct Budget {
    /// Maximum number of charged iterations.
    pub max_iterations: Option<u64>,
    /// Maximum wall-clock time from the first charge.
    pub max_time: Option<Duration>,
    /// Absolute wall-clock deadline. Unlike `max_time` (which is relative to
    /// each meter's first charge) a deadline is shared by every meter derived
    /// from the budget, so one per-request deadline bounds a whole chain of
    /// solver phases, retries included.
    pub deadline: Option<Instant>,
    /// Cooperative cancellation flag, polled on every charge.
    pub cancel: Option<CancelToken>,
}

impl Budget {
    /// No caps: meters never exhaust.
    pub fn unlimited() -> Self {
        Budget::default()
    }

    /// Cap iterations only.
    pub fn iterations(n: u64) -> Self {
        Budget {
            max_iterations: Some(n),
            ..Budget::default()
        }
    }

    /// Cap wall-clock time only.
    pub fn time(d: Duration) -> Self {
        Budget {
            max_time: Some(d),
            ..Budget::default()
        }
    }

    /// Add/replace a wall-clock cap on an existing budget.
    pub fn with_time(self, d: Duration) -> Self {
        Budget {
            max_time: Some(d),
            ..self
        }
    }

    /// Add/replace an absolute deadline on an existing budget.
    pub fn with_deadline(self, at: Instant) -> Self {
        Budget {
            deadline: Some(at),
            ..self
        }
    }

    /// Attach a cancellation token to an existing budget.
    pub fn with_cancel(self, token: CancelToken) -> Self {
        Budget {
            cancel: Some(token),
            ..self
        }
    }

    /// Start metering against this budget.
    pub fn meter(&self) -> Meter {
        Meter {
            budget: self.clone(),
            start: Instant::now(),
            used: 0,
            exhausted: None,
        }
    }

    /// Time remaining until the absolute deadline, if one is set.
    /// `Some(Duration::ZERO)` once the deadline has passed.
    pub fn headroom(&self) -> Option<Duration> {
        self.deadline
            .map(|at| at.saturating_duration_since(Instant::now()))
    }
}

/// Running consumption against a [`Budget`]. Cheap to charge: the clock is
/// only consulted when a time cap is set.
#[derive(Debug, Clone)]
pub struct Meter {
    budget: Budget,
    start: Instant,
    used: u64,
    exhausted: Option<&'static str>,
}

impl Meter {
    /// Charge one iteration. Returns `true` while budget remains; once it
    /// returns `false` it keeps returning `false` (exhaustion latches).
    pub fn tick(&mut self) -> bool {
        self.charge(1)
    }

    /// Charge `n` iterations at once.
    pub fn charge(&mut self, n: u64) -> bool {
        if self.exhausted.is_some() {
            return false;
        }
        self.used = self.used.saturating_add(n);
        if let Some(cap) = self.budget.max_iterations {
            if self.used > cap {
                self.exhausted = Some("iterations");
                return false;
            }
        }
        if let Some(token) = &self.budget.cancel {
            if token.is_cancelled() {
                self.exhausted = Some("cancelled");
                return false;
            }
        }
        if let Some(cap) = self.budget.max_time {
            if self.start.elapsed() > cap {
                self.exhausted = Some("time");
                return false;
            }
        }
        if let Some(at) = self.budget.deadline {
            if Instant::now() > at {
                self.exhausted = Some("deadline");
                return false;
            }
        }
        true
    }

    /// Which budget ran out, if any (`"iterations"`, `"time"`,
    /// `"deadline"`, or `"cancelled"`).
    pub fn exhausted(&self) -> Option<&'static str> {
        self.exhausted
    }

    /// Iterations charged so far.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Convert an exhausted meter into the standard error marker;
    /// `context` says where the budget ran out and what was salvaged.
    pub fn exhaustion_error(&self, context: &str) -> Option<crate::error::SolveError> {
        self.exhausted
            .map(|resource| crate::error::SolveError::BudgetExhausted {
                resource,
                message: format!("{context} (after {} iterations)", self.used),
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_exhausts() {
        let mut m = Budget::unlimited().meter();
        for _ in 0..10_000 {
            assert!(m.tick());
        }
        assert_eq!(m.exhausted(), None);
        assert_eq!(m.used(), 10_000);
    }

    #[test]
    fn iteration_cap_latches() {
        let mut m = Budget::iterations(3).meter();
        assert!(m.tick());
        assert!(m.tick());
        assert!(m.tick());
        assert!(!m.tick(), "fourth tick must exceed a cap of 3");
        assert!(!m.tick(), "exhaustion must latch");
        assert_eq!(m.exhausted(), Some("iterations"));
        let err = m.exhaustion_error("probe").unwrap();
        assert_eq!(err.kind(), "budget-exhausted");
        assert!(err.to_string().contains("probe"));
    }

    #[test]
    fn time_cap_trips() {
        let mut m = Budget::time(Duration::ZERO).meter();
        std::thread::sleep(Duration::from_millis(1));
        assert!(!m.tick());
        assert_eq!(m.exhausted(), Some("time"));
    }

    #[test]
    fn bulk_charge_counts() {
        let mut m = Budget::iterations(10).meter();
        assert!(m.charge(10));
        assert!(!m.charge(1));
        assert_eq!(m.used(), 11);
    }

    #[test]
    fn cancel_token_trips_meter() {
        let token = CancelToken::new();
        let mut m = Budget::unlimited().with_cancel(token.clone()).meter();
        assert!(m.tick());
        assert!(!token.is_cancelled());
        token.cancel();
        assert!(!m.tick());
        assert_eq!(m.exhausted(), Some("cancelled"));
        assert!(!m.tick(), "cancellation must latch");
        let err = m.exhaustion_error("bisection").unwrap();
        assert_eq!(err.kind(), "budget-exhausted");
    }

    #[test]
    fn past_deadline_trips_meter() {
        let now = Instant::now();
        let mut m = Budget::unlimited().with_deadline(now).meter();
        std::thread::sleep(Duration::from_millis(1));
        assert!(!m.tick());
        assert_eq!(m.exhausted(), Some("deadline"));
    }

    #[test]
    fn future_deadline_leaves_headroom() {
        let b = Budget::unlimited().with_deadline(Instant::now() + Duration::from_secs(60));
        let h = b.headroom().unwrap();
        assert!(h > Duration::from_secs(50));
        assert_eq!(Budget::unlimited().headroom(), None);
        let mut m = b.meter();
        for _ in 0..100 {
            assert!(m.tick());
        }
    }
}
