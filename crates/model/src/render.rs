//! ASCII rendering of schedules (Gantt charts and speed profiles).
//!
//! Debugging a scheduler from segment lists is miserable; these renderers
//! draw fixed-width charts good enough for terminals, examples and test
//! failure messages. Rendering is lossy by nature (time is quantized into
//! character cells); all *judgments* about schedules belong to
//! [`crate::Schedule::validate`], never to the renderer.

use crate::schedule::Schedule;
use crate::Time;
use std::fmt::Write as _;

/// Options for [`gantt`].
#[derive(Debug, Clone, Copy)]
pub struct GanttOptions {
    /// Total character width of the time axis.
    pub width: usize,
    /// Render a per-machine speed track under each machine row.
    pub show_speeds: bool,
}

impl Default for GanttOptions {
    fn default() -> Self {
        GanttOptions {
            width: 72,
            show_speeds: false,
        }
    }
}

/// Render a machine × time Gantt chart. Each machine gets one row; cells
/// show the last hex digit of the job id occupying that time slot (`.` =
/// idle, `#` = more than one job shares the cell after quantization).
pub fn gantt(schedule: &Schedule, opts: GanttOptions) -> String {
    let mut out = String::new();
    if schedule.is_empty() {
        return "(empty schedule)\n".to_string();
    }
    let t0 = schedule
        .segments()
        .iter()
        .map(|s| s.start)
        .fold(f64::INFINITY, f64::min);
    let t1 = schedule.makespan();
    let span = (t1 - t0).max(1e-300);
    let width = opts.width.max(8);
    let cell = |t: Time| -> usize {
        (((t - t0) / span) * width as f64)
            .floor()
            .min(width as f64 - 1.0)
            .max(0.0) as usize
    };

    let _ = writeln!(
        out,
        "time [{t0:.3}, {t1:.3}] ({width} cells, {:.4}/cell)",
        span / width as f64
    );
    for machine in 0..schedule.machines() {
        let mut row = vec!['.'; width];
        let mut speeds = vec![0.0f64; width];
        for s in schedule.segments().iter().filter(|s| s.machine == machine) {
            let (a, b) = (cell(s.start), cell(s.end - 1e-12 * span));
            let glyph = char::from_digit(s.job.0 % 16, 16).unwrap_or('?');
            for (k, slot) in row.iter_mut().enumerate().take(b + 1).skip(a) {
                *slot = if *slot == '.' || *slot == glyph {
                    glyph
                } else {
                    '#'
                };
                speeds[k] = speeds[k].max(s.speed);
            }
        }
        let _ = writeln!(out, "m{machine:<2} |{}|", row.iter().collect::<String>());
        if opts.show_speeds {
            let peak = speeds.iter().copied().fold(0.0, f64::max).max(1e-300);
            let track: String = speeds
                .iter()
                .map(|&v| {
                    if v == 0.0 {
                        ' '
                    } else {
                        // 8-level block ramp.
                        const RAMP: [char; 8] = [
                            '\u{2581}', '\u{2582}', '\u{2583}', '\u{2584}', '\u{2585}', '\u{2586}',
                            '\u{2587}', '\u{2588}',
                        ];
                        RAMP[((v / peak) * 7.0).round() as usize]
                    }
                })
                .collect();
            let _ = writeln!(out, "    |{track}| speed (peak {peak:.3})");
        }
    }
    out
}

/// Render the aggregate speed profile (total speed across machines over
/// time) as a one-line sparkline plus summary stats.
pub fn speed_sparkline(schedule: &Schedule, width: usize) -> String {
    if schedule.is_empty() {
        return "(empty schedule)".to_string();
    }
    let t0 = schedule
        .segments()
        .iter()
        .map(|s| s.start)
        .fold(f64::INFINITY, f64::min);
    let t1 = schedule.makespan();
    let span = (t1 - t0).max(1e-300);
    let width = width.max(4);
    let mut total = vec![0.0f64; width];
    for s in schedule.segments() {
        let a = (((s.start - t0) / span) * width as f64).floor() as usize;
        let b = (((s.end - t0) / span) * width as f64).ceil() as usize;
        for slot in total.iter_mut().take(b.min(width)).skip(a.min(width - 1)) {
            *slot += s.speed;
        }
    }
    let peak = total.iter().copied().fold(0.0, f64::max).max(1e-300);
    const RAMP: [char; 8] = [
        '\u{2581}', '\u{2582}', '\u{2583}', '\u{2584}', '\u{2585}', '\u{2586}', '\u{2587}',
        '\u{2588}',
    ];
    let line: String = total
        .iter()
        .map(|&v| {
            if v == 0.0 {
                ' '
            } else {
                RAMP[((v / peak) * 7.0).round() as usize]
            }
        })
        .collect();
    format!("|{line}| total speed, peak {peak:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{JobId, Schedule};

    fn sample() -> Schedule {
        let mut s = Schedule::new(2);
        s.run(JobId(0), 0, 0.0, 2.0, 1.0);
        s.run(JobId(1), 1, 1.0, 3.0, 2.0);
        s.run(JobId(2), 0, 2.5, 4.0, 0.5);
        s
    }

    #[test]
    fn empty_schedule_renders_placeholder() {
        let s = Schedule::new(2);
        assert!(gantt(&s, Default::default()).contains("empty"));
        assert!(speed_sparkline(&s, 40).contains("empty"));
    }

    #[test]
    fn rows_match_machines_and_jobs_appear() {
        let out = gantt(&sample(), Default::default());
        assert!(out.contains("m0 "));
        assert!(out.contains("m1 "));
        assert!(out.contains('0'), "job 0 glyph missing:\n{out}");
        assert!(out.contains('1'));
        assert!(out.contains('2'));
        // Idle time exists on both machines.
        assert!(out.contains('.'));
    }

    #[test]
    fn width_is_respected() {
        let out = gantt(
            &sample(),
            GanttOptions {
                width: 40,
                show_speeds: false,
            },
        );
        for line in out.lines().skip(1) {
            // "mX |....|" → 40 cells between the pipes.
            let inner = line.split('|').nth(1).unwrap();
            assert_eq!(inner.chars().count(), 40, "bad row: {line}");
        }
    }

    #[test]
    fn speed_track_appears_on_request() {
        let out = gantt(
            &sample(),
            GanttOptions {
                width: 32,
                show_speeds: true,
            },
        );
        assert!(out.contains("speed (peak"));
    }

    #[test]
    fn sparkline_has_requested_width() {
        let line = speed_sparkline(&sample(), 24);
        let inner = line.split('|').nth(1).unwrap();
        assert_eq!(inner.chars().count(), 24);
        assert!(line.contains("peak"));
    }

    #[test]
    fn overlap_marker_for_shared_cells() {
        // Two different jobs in the same quantized cell on one machine.
        let mut s = Schedule::new(1);
        s.run(JobId(1), 0, 0.0, 0.001, 1.0);
        s.run(JobId(2), 0, 0.001, 1000.0, 1.0);
        let out = gantt(
            &s,
            GanttOptions {
                width: 10,
                show_speeds: false,
            },
        );
        assert!(out.contains('#') || out.contains('2'));
    }
}
