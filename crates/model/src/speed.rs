//! Per-job constant speed assignments.
//!
//! By convexity of `s^alpha` there is always an optimal schedule in which
//! every job runs at a single constant speed, so most algorithms in this
//! workspace first decide *speeds* and only then materialize segments. A
//! [`SpeedAssignment`] is that intermediate: `speeds[i]` belongs to the job at
//! internal index `i` of the instance it was computed for.

use crate::instance::Instance;
use crate::numeric::{energy_of, Tol};

/// Constant speeds, indexed like `Instance::jobs()`.
#[derive(Debug, Clone, PartialEq)]
pub struct SpeedAssignment {
    speeds: Vec<f64>,
}

impl SpeedAssignment {
    /// Wrap a speed vector (length must match the instance it refers to;
    /// checked at use sites via [`SpeedAssignment::energy`] etc.).
    pub fn new(speeds: Vec<f64>) -> Self {
        SpeedAssignment { speeds }
    }

    /// All speeds.
    #[inline]
    pub fn speeds(&self) -> &[f64] {
        &self.speeds
    }

    /// Speed of job at internal index `i`.
    #[inline]
    pub fn get(&self, i: usize) -> f64 {
        self.speeds[i]
    }

    /// Overwrite the speed of job `i`.
    #[inline]
    pub fn set(&mut self, i: usize, s: f64) {
        self.speeds[i] = s;
    }

    /// Number of jobs covered.
    #[inline]
    pub fn len(&self) -> usize {
        self.speeds.len()
    }

    /// `true` when empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.speeds.is_empty()
    }

    /// Total energy `Σ w_i · s_i^(alpha-1)` — the convex-program objective.
    pub fn energy(&self, instance: &Instance) -> f64 {
        assert_eq!(
            self.speeds.len(),
            instance.len(),
            "assignment/instance length mismatch"
        );
        instance
            .jobs()
            .iter()
            .zip(&self.speeds)
            .map(|(j, &s)| energy_of(j.work, s, instance.alpha()))
            .sum()
    }

    /// Processing time of each job at its assigned speed: `w_i / s_i`.
    pub fn processing_times(&self, instance: &Instance) -> Vec<f64> {
        assert_eq!(
            self.speeds.len(),
            instance.len(),
            "assignment/instance length mismatch"
        );
        instance
            .jobs()
            .iter()
            .zip(&self.speeds)
            .map(|(j, &s)| j.work / s)
            .collect()
    }

    /// Fastest assigned speed (0 when empty).
    pub fn max_speed(&self) -> f64 {
        self.speeds.iter().copied().fold(0.0, f64::max)
    }

    /// Slowest assigned speed (+inf when empty).
    pub fn min_speed(&self) -> f64 {
        self.speeds.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Every feasible assignment must run each job at least at its density
    /// (otherwise the job cannot fit in its own window). Tolerant check used
    /// as a cheap sanity screen before expensive feasibility tests.
    pub fn respects_densities(&self, instance: &Instance, tol: Tol) -> bool {
        assert_eq!(
            self.speeds.len(),
            instance.len(),
            "assignment/instance length mismatch"
        );
        instance
            .jobs()
            .iter()
            .zip(&self.speeds)
            .all(|(j, &s)| tol.ge(s, j.density()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::Job;

    fn inst() -> Instance {
        Instance::new(
            vec![Job::new(0, 2.0, 0.0, 2.0), Job::new(1, 3.0, 0.0, 3.0)],
            1,
            3.0,
        )
        .unwrap()
    }

    #[test]
    fn energy_matches_objective() {
        let a = SpeedAssignment::new(vec![2.0, 1.0]);
        // alpha = 3: E = 2*2^2 + 3*1^2 = 11.
        assert!((a.energy(&inst()) - 11.0).abs() < 1e-12);
    }

    #[test]
    fn processing_times_divide_work_by_speed() {
        let a = SpeedAssignment::new(vec![2.0, 1.5]);
        assert_eq!(a.processing_times(&inst()), vec![1.0, 2.0]);
    }

    #[test]
    fn extremes() {
        let a = SpeedAssignment::new(vec![2.0, 0.5]);
        assert_eq!(a.max_speed(), 2.0);
        assert_eq!(a.min_speed(), 0.5);
        let e = SpeedAssignment::new(vec![]);
        assert_eq!(e.max_speed(), 0.0);
        assert_eq!(e.min_speed(), f64::INFINITY);
        assert!(e.is_empty());
    }

    #[test]
    fn density_screen() {
        // densities: 1.0 and 1.0.
        let ok = SpeedAssignment::new(vec![1.0, 1.2]);
        assert!(ok.respects_densities(&inst(), Tol::default()));
        let bad = SpeedAssignment::new(vec![0.9, 1.2]);
        assert!(!bad.respects_densities(&inst(), Tol::default()));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn length_mismatch_panics() {
        SpeedAssignment::new(vec![1.0]).energy(&inst());
    }
}
