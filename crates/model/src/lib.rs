//! # ssp-model
//!
//! Shared data model for *speed scaling on parallel processors*:
//!
//! * [`Job`], [`Instance`] — the input side: jobs with works, release dates and
//!   deadlines, to be run on `m` identical variable-speed processors with power
//!   function `P(s) = s^alpha`.
//! * [`interval`] — the canonical decomposition of the time axis at release
//!   dates / deadlines, and alive-set bookkeeping (`A(j)` in the papers).
//! * [`Schedule`] — the output side: explicit per-processor segments with
//!   speeds, plus an audited validator ([`Schedule::validate`]) and energy
//!   accounting.
//! * [`SpeedAssignment`] — the intermediate object most algorithms produce
//!   first (a constant speed per job; in every optimal schedule each job runs
//!   at one constant speed, by convexity of `s^alpha`).
//! * [`numeric`] — the single place where floating-point tolerances live.
//! * [`resource`] — iteration/time budgets ([`Budget`]/[`Meter`]) so the
//!   iterative solvers stay total, and [`SolveError`] in [`error`] as the
//!   workspace-wide typed failure for any solve attempt.
//! * [`io`] — a small line-oriented text format for instances so that
//!   examples/CLI can save and load workloads without extra dependencies.
//! * [`arrival`] — the same text format read/written as a release-ordered
//!   *stream* (O(1) memory), the input side of the online engine.
//!
//! Every algorithm crate in the workspace (single-processor YDS/AVR/OA, the
//! migratory BAL solver, the non-migratory SPAA'07 algorithms) consumes and
//! produces these types, so that *validity* and *energy* are always judged by
//! one implementation.

#![warn(missing_docs)]

pub mod analysis;
pub mod arrival;
pub mod error;
pub mod instance;
pub mod interval;
pub mod io;
pub mod job;
pub mod numeric;
pub mod par;
pub mod quantize;
pub mod render;
pub mod resource;
pub mod schedule;
pub mod speed;
pub mod svg;

pub use arrival::{ArrivalReader, ArrivalWriter, TraceHeader};
pub use error::{ModelError, SolveError, ValidationError};
pub use instance::Instance;
pub use interval::{IntervalSet, Timeline};
pub use job::{Job, JobId};
pub use resource::{Budget, CancelToken, Meter};
pub use schedule::{Schedule, ScheduleStats, Segment};
pub use speed::SpeedAssignment;

/// Time instants and durations. All quantities in the model are `f64`; see
/// [`numeric`] for the comparison policy.
pub type Time = f64;

#[cfg(test)]
mod lib_tests {
    //! Cross-module smoke tests; the real suites live next to each module.
    use crate::{Instance, Job};

    #[test]
    fn facade_types_compose() {
        let inst = Instance::new(
            vec![Job::new(0, 1.0, 0.0, 1.0), Job::new(1, 2.0, 0.0, 2.0)],
            2,
            2.0,
        )
        .unwrap();
        assert_eq!(inst.len(), 2);
        assert_eq!(inst.machines(), 2);
    }
}
