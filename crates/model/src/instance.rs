//! Problem instances: a job set, a machine count and a power exponent.

use crate::error::ModelError;
use crate::job::{Job, JobId};
use crate::numeric::Tol;
use crate::Time;
use std::collections::HashMap;

/// An instance of multiprocessor speed scaling: jobs to be scheduled on
/// `machines` identical variable-speed processors with power `s^alpha`.
///
/// Construction validates all invariants (positive works, nonempty windows,
/// finite fields, unique ids, `machines >= 1`, `alpha > 1`), so downstream
/// algorithms can rely on them unconditionally.
#[derive(Debug, Clone, PartialEq)]
pub struct Instance {
    jobs: Vec<Job>,
    machines: usize,
    alpha: f64,
    /// Map from job id to position in `jobs`.
    by_id: HashMap<JobId, usize>,
}

impl Instance {
    /// Validate and build an instance. Jobs keep the given order; algorithms
    /// that need a particular order sort indices, not the instance.
    pub fn new(jobs: Vec<Job>, machines: usize, alpha: f64) -> Result<Self, ModelError> {
        if machines == 0 {
            return Err(ModelError::NoMachines);
        }
        // NaN alpha must land here too, hence the conjunctive form.
        let alpha_ok = alpha > 1.0 && alpha.is_finite();
        if !alpha_ok {
            return Err(ModelError::BadAlpha { alpha });
        }
        let mut by_id = HashMap::with_capacity(jobs.len());
        for job in &jobs {
            for (name, v) in [
                ("work", job.work),
                ("release", job.release),
                ("deadline", job.deadline),
            ] {
                if !v.is_finite() {
                    return Err(ModelError::NotFinite {
                        job: job.id.0,
                        field: name,
                        value: v,
                    });
                }
            }
            if job.work <= 0.0 {
                return Err(ModelError::NonPositiveWork {
                    job: job.id.0,
                    work: job.work,
                });
            }
            if job.deadline <= job.release {
                return Err(ModelError::EmptyWindow {
                    job: job.id.0,
                    release: job.release,
                    deadline: job.deadline,
                });
            }
            if by_id.insert(job.id, by_id.len()).is_some() {
                return Err(ModelError::DuplicateJobId { job: job.id.0 });
            }
        }
        Ok(Instance {
            jobs,
            machines,
            alpha,
            by_id,
        })
    }

    /// The jobs, in construction order.
    #[inline]
    pub fn jobs(&self) -> &[Job] {
        &self.jobs
    }

    /// Number of machines `m`.
    #[inline]
    pub fn machines(&self) -> usize {
        self.machines
    }

    /// Power exponent `alpha > 1`.
    #[inline]
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Number of jobs `n`.
    #[inline]
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// `true` if the instance has no jobs (allowed; the optimum is the empty
    /// schedule with zero energy).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Job at internal index `idx`.
    #[inline]
    pub fn job(&self, idx: usize) -> &Job {
        &self.jobs[idx]
    }

    /// Look a job up by id.
    pub fn job_by_id(&self, id: JobId) -> Option<&Job> {
        self.by_id.get(&id).map(|&i| &self.jobs[i])
    }

    /// Internal index of a job id.
    pub fn index_of(&self, id: JobId) -> Option<usize> {
        self.by_id.get(&id).copied()
    }

    /// Sum of all works `W`.
    pub fn total_work(&self) -> f64 {
        self.jobs.iter().map(|j| j.work).sum()
    }

    /// Largest job density — a lower bound on the maximum speed any feasible
    /// schedule must use.
    pub fn max_density(&self) -> f64 {
        self.jobs.iter().map(|j| j.density()).fold(0.0, f64::max)
    }

    /// `(min release, max deadline)`; `None` for empty instances.
    pub fn horizon(&self) -> Option<(Time, Time)> {
        if self.jobs.is_empty() {
            return None;
        }
        let lo = self
            .jobs
            .iter()
            .map(|j| j.release)
            .fold(f64::INFINITY, f64::min);
        let hi = self
            .jobs
            .iter()
            .map(|j| j.deadline)
            .fold(f64::NEG_INFINITY, f64::max);
        Some((lo, hi))
    }

    /// Do all jobs have (tolerantly) equal works? This is the "unit work"
    /// hypothesis of the paper's R1/R2 results (any common work value counts:
    /// rescaling works rescales energy but preserves schedules).
    pub fn is_uniform_work(&self, tol: Tol) -> bool {
        match self.jobs.first() {
            None => true,
            Some(first) => self.jobs.iter().all(|j| tol.eq(j.work, first.work)),
        }
    }

    /// Agreeable deadlines: sorting by release date also sorts deadlines
    /// (`r_i < r_j ⟹ d_i ≤ d_j`). Equal releases impose no constraint.
    pub fn is_agreeable(&self) -> bool {
        let mut order: Vec<usize> = (0..self.jobs.len()).collect();
        order.sort_by(|&a, &b| {
            self.jobs[a]
                .release
                .total_cmp(&self.jobs[b].release)
                .then(self.jobs[a].deadline.total_cmp(&self.jobs[b].deadline))
        });
        order.windows(2).all(|w| {
            let (a, b) = (&self.jobs[w[0]], &self.jobs[w[1]]);
            a.release == b.release || a.deadline <= b.deadline
        })
    }

    /// Indices sorted by `(release, deadline, id)` — the canonical order used
    /// by the round-robin and list algorithms.
    pub fn release_order(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.jobs.len()).collect();
        order.sort_by(|&a, &b| {
            let (ja, jb) = (&self.jobs[a], &self.jobs[b]);
            ja.release
                .total_cmp(&jb.release)
                .then(ja.deadline.total_cmp(&jb.deadline))
                .then(ja.id.cmp(&jb.id))
        });
        order
    }

    /// A copy with a different machine count.
    pub fn with_machines(&self, machines: usize) -> Result<Self, ModelError> {
        Instance::new(self.jobs.clone(), machines, self.alpha)
    }

    /// A copy with a different power exponent.
    pub fn with_alpha(&self, alpha: f64) -> Result<Self, ModelError> {
        Instance::new(self.jobs.clone(), self.machines, alpha)
    }

    /// The sub-instance containing only the jobs at the given internal
    /// indices (used by divide-and-conquer and per-machine re-optimization).
    pub fn subset(&self, indices: &[usize]) -> Self {
        let jobs: Vec<Job> = indices.iter().map(|&i| self.jobs[i]).collect();
        Instance::new(jobs, self.machines, self.alpha).expect("subset of a valid instance is valid")
    }

    /// A copy where every deadline is clamped to `min(d_i, x)` — the
    /// common-deadline restriction used by the makespan/budget algorithm
    /// (MBAL). Fails if some job's window becomes empty (`x <= r_i`).
    pub fn clamp_deadlines(&self, x: Time) -> Result<Self, ModelError> {
        let jobs: Vec<Job> = self
            .jobs
            .iter()
            .map(|j| Job {
                deadline: j.deadline.min(x),
                ..*j
            })
            .collect();
        Instance::new(jobs, self.machines, self.alpha)
    }

    /// A copy with all works multiplied by `c > 0`. Optimal energy scales by
    /// `c^alpha` (speeds scale by `c`); used by scale-invariance tests.
    pub fn scale_works(&self, c: f64) -> Result<Self, ModelError> {
        let jobs: Vec<Job> = self
            .jobs
            .iter()
            .map(|j| Job {
                work: j.work * c,
                ..*j
            })
            .collect();
        Instance::new(jobs, self.machines, self.alpha)
    }

    /// A copy with the time axis stretched by `c > 0` (releases and deadlines
    /// multiplied). Optimal energy scales by `c^(1-alpha)`.
    pub fn scale_time(&self, c: f64) -> Result<Self, ModelError> {
        let jobs: Vec<Job> = self
            .jobs
            .iter()
            .map(|j| Job {
                release: j.release * c,
                deadline: j.deadline * c,
                ..*j
            })
            .collect();
        Instance::new(jobs, self.machines, self.alpha)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn j(id: u32, w: f64, r: f64, d: f64) -> Job {
        Job::new(id, w, r, d)
    }

    #[test]
    fn rejects_invalid_inputs() {
        assert_eq!(
            Instance::new(vec![j(0, 0.0, 0.0, 1.0)], 1, 2.0),
            Err(ModelError::NonPositiveWork { job: 0, work: 0.0 })
        );
        assert_eq!(
            Instance::new(vec![j(0, 1.0, 1.0, 1.0)], 1, 2.0),
            Err(ModelError::EmptyWindow {
                job: 0,
                release: 1.0,
                deadline: 1.0
            })
        );
        assert_eq!(Instance::new(vec![], 0, 2.0), Err(ModelError::NoMachines));
        assert_eq!(
            Instance::new(vec![], 1, 1.0),
            Err(ModelError::BadAlpha { alpha: 1.0 })
        );
        assert_eq!(
            Instance::new(vec![j(0, 1.0, 0.0, 1.0), j(0, 1.0, 0.0, 2.0)], 1, 2.0),
            Err(ModelError::DuplicateJobId { job: 0 })
        );
        assert!(matches!(
            Instance::new(vec![j(0, f64::NAN, 0.0, 1.0)], 1, 2.0),
            Err(ModelError::NotFinite { field: "work", .. })
        ));
    }

    #[test]
    fn empty_instance_is_allowed() {
        let inst = Instance::new(vec![], 2, 2.0).unwrap();
        assert!(inst.is_empty());
        assert_eq!(inst.total_work(), 0.0);
        assert_eq!(inst.horizon(), None);
        assert!(inst.is_agreeable());
        assert!(inst.is_uniform_work(Tol::default()));
    }

    #[test]
    fn lookup_and_aggregates() {
        let inst = Instance::new(vec![j(5, 1.0, 0.0, 2.0), j(9, 3.0, 1.0, 2.0)], 3, 2.5).unwrap();
        assert_eq!(inst.index_of(JobId(9)), Some(1));
        assert_eq!(inst.job_by_id(JobId(5)).unwrap().work, 1.0);
        assert_eq!(inst.job_by_id(JobId(7)), None);
        assert_eq!(inst.total_work(), 4.0);
        assert_eq!(inst.max_density(), 3.0); // job 9: 3/(2-1)
        assert_eq!(inst.horizon(), Some((0.0, 2.0)));
    }

    #[test]
    fn agreeable_detection() {
        // Agreeable: releases and deadlines sorted together.
        let a = Instance::new(
            vec![
                j(0, 1.0, 0.0, 2.0),
                j(1, 1.0, 1.0, 3.0),
                j(2, 1.0, 1.0, 2.5),
            ],
            1,
            2.0,
        )
        .unwrap();
        assert!(a.is_agreeable());

        // Not agreeable: later release, earlier deadline (nested windows).
        let b = Instance::new(vec![j(0, 1.0, 0.0, 10.0), j(1, 1.0, 2.0, 3.0)], 1, 2.0).unwrap();
        assert!(!b.is_agreeable());
    }

    #[test]
    fn uniform_work_detection() {
        let u = Instance::new(vec![j(0, 2.0, 0.0, 1.0), j(1, 2.0, 0.0, 2.0)], 1, 2.0).unwrap();
        assert!(u.is_uniform_work(Tol::default()));
        let v = Instance::new(vec![j(0, 2.0, 0.0, 1.0), j(1, 1.0, 0.0, 2.0)], 1, 2.0).unwrap();
        assert!(!v.is_uniform_work(Tol::default()));
    }

    #[test]
    fn release_order_breaks_ties_deterministically() {
        let inst = Instance::new(
            vec![
                j(2, 1.0, 0.0, 3.0),
                j(1, 1.0, 0.0, 2.0),
                j(0, 1.0, 0.0, 2.0),
            ],
            1,
            2.0,
        )
        .unwrap();
        let order = inst.release_order();
        // Same release: deadline then id ordering => job 0 (d=2), job 1 (d=2), job 2 (d=3).
        let ids: Vec<u32> = order.iter().map(|&i| inst.job(i).id.0).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn transforms() {
        let inst = Instance::new(vec![j(0, 1.0, 0.0, 2.0), j(1, 2.0, 1.0, 4.0)], 2, 2.0).unwrap();
        let clamped = inst.clamp_deadlines(3.0).unwrap();
        assert_eq!(clamped.job(0).deadline, 2.0);
        assert_eq!(clamped.job(1).deadline, 3.0);
        assert!(inst.clamp_deadlines(0.5).is_err()); // job 1 window empties

        let scaled = inst.scale_works(3.0).unwrap();
        assert_eq!(scaled.job(1).work, 6.0);
        let stretched = inst.scale_time(2.0).unwrap();
        assert_eq!(stretched.job(1).release, 2.0);
        assert_eq!(stretched.job(1).deadline, 8.0);

        assert_eq!(inst.with_machines(5).unwrap().machines(), 5);
        assert_eq!(inst.with_alpha(3.0).unwrap().alpha(), 3.0);
    }

    #[test]
    fn subset_keeps_selected_jobs() {
        let inst = Instance::new(
            vec![
                j(0, 1.0, 0.0, 1.0),
                j(1, 2.0, 0.0, 2.0),
                j(2, 3.0, 0.0, 3.0),
            ],
            2,
            2.0,
        )
        .unwrap();
        let sub = inst.subset(&[2, 0]);
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.job(0).id, JobId(2));
        assert_eq!(sub.job(1).id, JobId(0));
    }
}
