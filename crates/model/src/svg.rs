//! SVG rendering of schedules — publication-quality counterpart of the
//! ASCII charts in [`crate::render`].
//!
//! The output is a self-contained `<svg>` document: one horizontal lane per
//! machine, one rectangle per segment, fill lightness encoding speed
//! (darker = faster), with a time axis and an optional per-job hue. No
//! external crates; the builder emits plain strings and escapes everything
//! that needs escaping.

use crate::schedule::Schedule;
use std::fmt::Write as _;

/// Options for [`svg_gantt`].
#[derive(Debug, Clone, Copy)]
pub struct SvgOptions {
    /// Total document width in pixels.
    pub width: u32,
    /// Lane height per machine in pixels.
    pub lane_height: u32,
    /// Color segments by job id hue (otherwise all lanes share one hue).
    pub color_by_job: bool,
}

impl Default for SvgOptions {
    fn default() -> Self {
        SvgOptions {
            width: 960,
            lane_height: 36,
            color_by_job: true,
        }
    }
}

/// Render the schedule as an SVG document string.
pub fn svg_gantt(schedule: &Schedule, opts: SvgOptions) -> String {
    let machines = schedule.machines().max(1);
    let margin = 40.0;
    let axis_height = 24.0;
    let lane_h = opts.lane_height as f64;
    let width = opts.width as f64;
    let height = machines as f64 * (lane_h + 8.0) + axis_height + 16.0;

    let mut out = String::new();
    let _ = writeln!(
        out,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{w}" height="{h}" viewBox="0 0 {w} {h}" font-family="monospace" font-size="11">"#,
        w = width,
        h = height
    );
    let _ = writeln!(out, r#"<rect width="100%" height="100%" fill="white"/>"#);

    if schedule.is_empty() {
        let _ = writeln!(out, r#"<text x="{margin}" y="24">empty schedule</text>"#);
        out.push_str("</svg>\n");
        return out;
    }

    let t0 = schedule
        .segments()
        .iter()
        .map(|s| s.start)
        .fold(f64::INFINITY, f64::min);
    let t1 = schedule.makespan();
    let span = (t1 - t0).max(1e-300);
    let plot_w = width - 2.0 * margin;
    let x_of = |t: f64| margin + (t - t0) / span * plot_w;
    let peak_speed = schedule
        .segments()
        .iter()
        .map(|s| s.speed)
        .fold(0.0, f64::max)
        .max(1e-300);

    // Lanes.
    for m in 0..machines {
        let y = 8.0 + m as f64 * (lane_h + 8.0);
        let _ = writeln!(
            out,
            r##"<rect x="{margin}" y="{y}" width="{plot_w}" height="{lane_h}" fill="#f2f2f2"/>"##
        );
        let _ = writeln!(
            out,
            r#"<text x="4" y="{ty}">m{m}</text>"#,
            ty = y + lane_h / 2.0 + 4.0
        );
    }

    // Segments.
    for seg in schedule.segments() {
        let y = 8.0 + seg.machine as f64 * (lane_h + 8.0);
        let x = x_of(seg.start);
        let w = (x_of(seg.end) - x).max(0.5);
        let hue = if opts.color_by_job {
            (seg.job.0 as u64 * 47) % 360
        } else {
            210
        };
        // Faster => darker (lower lightness), floor at 30%.
        let lightness = 80.0 - 50.0 * (seg.speed / peak_speed);
        let title = format!(
            "{} on m{}: [{:.4}, {:.4}] at speed {:.4}",
            seg.job, seg.machine, seg.start, seg.end, seg.speed
        );
        let _ = writeln!(
            out,
            r#"<rect x="{x:.2}" y="{y:.2}" width="{w:.2}" height="{lane_h}" fill="hsl({hue},70%,{lightness:.0}%)" stroke="white" stroke-width="0.5"><title>{title}</title></rect>"#,
        );
    }

    // Time axis with ~8 ticks.
    let axis_y = 8.0 + machines as f64 * (lane_h + 8.0) + 12.0;
    let _ = writeln!(
        out,
        r#"<line x1="{margin}" y1="{axis_y}" x2="{x2}" y2="{axis_y}" stroke="black"/>"#,
        x2 = margin + plot_w
    );
    for k in 0..=8 {
        let t = t0 + span * k as f64 / 8.0;
        let x = x_of(t);
        let _ = writeln!(
            out,
            r#"<line x1="{x:.2}" y1="{axis_y}" x2="{x:.2}" y2="{y2}" stroke="black"/><text x="{x:.2}" y="{ty}" text-anchor="middle">{t:.2}</text>"#,
            y2 = axis_y + 4.0,
            ty = axis_y + 16.0
        );
    }
    out.push_str("</svg>\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{JobId, Schedule};

    fn sample() -> Schedule {
        let mut s = Schedule::new(2);
        s.run(JobId(0), 0, 0.0, 2.0, 1.0);
        s.run(JobId(1), 1, 1.0, 3.0, 2.0);
        s
    }

    #[test]
    fn produces_wellformed_svg() {
        let svg = svg_gantt(&sample(), Default::default());
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        // One background + 2 lanes + 2 segments = at least 5 rects.
        assert!(svg.matches("<rect").count() >= 5);
        // Tooltips carry the segment data.
        assert!(svg.contains("j0 on m0"));
        assert!(svg.contains("speed 2.0000"));
    }

    #[test]
    fn empty_schedule_has_placeholder() {
        let svg = svg_gantt(&Schedule::new(3), Default::default());
        assert!(svg.contains("empty schedule"));
        assert!(svg.trim_end().ends_with("</svg>"));
    }

    #[test]
    fn lane_count_matches_machines() {
        let svg = svg_gantt(&sample(), Default::default());
        assert!(svg.contains(">m0<"));
        assert!(svg.contains(">m1<"));
        assert!(!svg.contains(">m2<"));
    }

    #[test]
    fn monochrome_mode() {
        let svg = svg_gantt(
            &sample(),
            SvgOptions {
                color_by_job: false,
                ..Default::default()
            },
        );
        assert!(svg.contains("hsl(210,"));
    }

    #[test]
    fn axis_ticks_cover_the_span() {
        let svg = svg_gantt(&sample(), Default::default());
        assert!(svg.contains(">0.00<"));
        assert!(svg.contains(">3.00<"));
    }
}
