//! Exhaustive cross-validation over a small discrete universe of instances.
//!
//! Random testing can miss structured corner cases; here we enumerate *all*
//! instances with windows drawn from a small grid and check the full
//! invariant stack on every single one:
//!
//! * BAL's KKT certificate accepts (⇒ BAL is optimal);
//! * migratory OPT ≤ exact non-migratory OPT ≤ every heuristic;
//! * all schedules validate with matching energies;
//! * RR equals the exact optimum whenever the instance is unit + agreeable.
//!
//! Universe: windows `[r, d]` with `r ∈ {0, 1, 2}`, `d ∈ {r+1, r+2, r+3}`
//! (9 windows), works `∈ {1, 2}` ⇒ 18 distinct jobs; all multisets of size
//! ≤ 3 over the 18 job types, on m ∈ {1, 2} — about 2.5k instances in total,
//! every one checked.

use speedscale::core::assignment::{assignment_energy, assignment_schedule};
use speedscale::core::exact::exact_nonmigratory;
use speedscale::core::relax::relax_round;
use speedscale::core::rr::rr_assignment;
use speedscale::migratory::bal::bal;
use speedscale::migratory::kkt::certify;
use speedscale::model::numeric::Tol;
use speedscale::model::schedule::ValidationOptions;
use speedscale::model::{Instance, Job};

/// All 18 job shapes of the universe.
fn job_types() -> Vec<(f64, f64, f64)> {
    let mut types = Vec::new();
    for r in 0..3 {
        for len in 1..=3 {
            for w in [1.0, 2.0] {
                types.push((w, r as f64, (r + len) as f64));
            }
        }
    }
    types
}

/// Multisets of size `k` over `types` (combinations with repetition).
fn multisets(k: usize, types: usize) -> Vec<Vec<usize>> {
    fn rec(
        k: usize,
        start: usize,
        types: usize,
        current: &mut Vec<usize>,
        out: &mut Vec<Vec<usize>>,
    ) {
        if k == 0 {
            out.push(current.clone());
            return;
        }
        for t in start..types {
            current.push(t);
            rec(k - 1, t, types, current, out);
            current.pop();
        }
    }
    let mut out = Vec::new();
    rec(k, 0, types, &mut Vec::new(), &mut out);
    out
}

fn build(selection: &[usize], types: &[(f64, f64, f64)], m: usize) -> Instance {
    let jobs: Vec<Job> = selection
        .iter()
        .enumerate()
        .map(|(i, &t)| {
            let (w, r, d) = types[t];
            Job::new(i as u32, w, r, d)
        })
        .collect();
    Instance::new(jobs, m, 2.0).unwrap()
}

#[test]
fn every_small_instance_passes_the_full_stack() {
    let types = job_types();
    let mut checked = 0usize;
    let mut rr_optimal_cases = 0usize;
    let mut unit_agreeable_cases = 0usize;
    for k in 1..=3usize {
        for selection in multisets(k, types.len()) {
            for m in [1usize, 2] {
                let inst = build(&selection, &types, m);

                // 1. BAL + certificate.
                let sol = bal(&inst);
                certify(&inst, &sol, Tol::rel(1e-6))
                    .unwrap_or_else(|v| panic!("KKT failed on {selection:?} m={m}: {v}"));
                let mig = sol.energy;

                // 2. Exact ordering.
                let exact = exact_nonmigratory(&inst);
                assert!(
                    exact.energy >= mig * (1.0 - 1e-6),
                    "{selection:?} m={m}: exact {} < migratory {mig}",
                    exact.energy
                );

                // 3. Heuristics never beat exact; schedules validate.
                for assign in [rr_assignment(&inst), relax_round(&inst)] {
                    let e = assignment_energy(&inst, &assign);
                    assert!(
                        e >= exact.energy * (1.0 - 1e-9),
                        "{selection:?} m={m}: heuristic {e} < exact {}",
                        exact.energy
                    );
                    let s = assignment_schedule(&inst, &assign);
                    let stats = s
                        .validate(&inst, ValidationOptions::non_migratory())
                        .unwrap();
                    assert!((stats.energy - e).abs() <= 1e-6 * e);
                }

                // 4. R1 on the unit+agreeable subset of the universe.
                if inst.is_uniform_work(Tol::default()) && inst.is_agreeable() {
                    unit_agreeable_cases += 1;
                    let rr = assignment_energy(&inst, &rr_assignment(&inst));
                    assert!(
                        rr <= exact.energy * (1.0 + 1e-6),
                        "{selection:?} m={m}: RR {rr} suboptimal vs {}",
                        exact.energy
                    );
                    rr_optimal_cases += 1;
                }
                checked += 1;
            }
        }
    }
    // The universe really is exhaustive-sized, and the R1 regime nonempty.
    assert!(checked > 2000, "only {checked} instances checked");
    assert!(
        unit_agreeable_cases > 100,
        "only {unit_agreeable_cases} R1 cases"
    );
    assert_eq!(rr_optimal_cases, unit_agreeable_cases);
}
