//! Differential tests for the fast YDS kernel (tier-1, pinned seeds).
//!
//! The fast critical-interval kernel behind `yds()` prunes starts and sweep
//! tails with certified upper bounds; the retained reference peel
//! (`yds_reference`) scans every candidate. The two must agree **bit for
//! bit** — same peel list, same speeds, same energy — because the whole
//! non-migratory stack (local search transcripts, branch-and-bound pruning,
//! the `YdsEval` memo) relies on energies being exactly reproducible.
//!
//! Families covered: seeded random windows, agreeable staircases, laminar
//! nests, heavy-crossing staircases, duplicate deadlines on a coarse grid,
//! and degenerate zero-width windows (release == deadline ⇒ infinite speed).
//! On non-degenerate instances the explicit `yds_schedule` must also stay
//! EDF-feasible with validated energy equal to the kernel's.

use ssp_model::schedule::ValidationOptions;
use ssp_model::{Instance, Job};
use ssp_prng::{check, Rng, StdRng};
use ssp_single::yds::{yds, yds_energy_in, yds_reference, yds_schedule, YdsArena};
use ssp_workloads::families;

/// Assert the two kernels produce bitwise-identical solutions.
fn assert_bitwise_equal(jobs: &[Job], alpha: f64, ctx: &str) {
    let fast = yds(jobs, alpha);
    let reference = yds_reference(jobs, alpha);
    assert_eq!(
        fast.peels, reference.peels,
        "{ctx}: peel sequences diverged"
    );
    assert_eq!(
        fast.energy.to_bits(),
        reference.energy.to_bits(),
        "{ctx}: energy {} vs reference {}",
        fast.energy,
        reference.energy
    );
    assert_eq!(fast.speeds.len(), reference.speeds.len());
    for (i, (sf, sr)) in fast.speeds.iter().zip(&reference.speeds).enumerate() {
        assert_eq!(
            sf.to_bits(),
            sr.to_bits(),
            "{ctx}: speed of job {i} diverged ({sf} vs {sr})"
        );
    }
}

/// Validate the full `yds_schedule` pipeline on a (non-degenerate) job set.
fn assert_schedule_feasible(jobs: &[Job], alpha: f64, ctx: &str) {
    let (sol, schedule) = yds_schedule(jobs, alpha, 0);
    let inst = Instance::new(jobs.to_vec(), 1, alpha).expect("valid instance");
    let stats = schedule
        .validate(&inst, ValidationOptions::non_migratory())
        .unwrap_or_else(|e| panic!("{ctx}: YDS schedule failed validation: {e}"));
    assert!(
        (stats.energy - sol.energy).abs() <= 1e-6 * sol.energy.max(1e-12),
        "{ctx}: schedule energy {} vs kernel energy {}",
        stats.energy,
        sol.energy
    );
}

#[test]
fn random_instances_agree_bitwise_and_schedule() {
    check::cases(120, 0xD1FF_0001, |rng| {
        let jobs: Vec<Job> = check::vec_of(rng, 1..40, |r| {
            (
                r.gen_range(0.05f64..4.0),
                r.gen_range(0.0f64..12.0),
                r.gen_range(0.1f64..5.0),
            )
        })
        .into_iter()
        .enumerate()
        .map(|(i, (w, r, len))| Job::new(i as u32, w, r, r + len))
        .collect();
        let alpha = rng.gen_range(1.3f64..3.2);
        assert_bitwise_equal(&jobs, alpha, "random");
        assert_schedule_feasible(&jobs, alpha, "random");
    });
}

#[test]
fn duplicate_deadlines_on_a_grid_agree_bitwise() {
    // Snapping both endpoints to a coarse grid creates many exactly-equal
    // deadlines (and releases), exercising the stable-sort tie-breaks.
    check::cases(80, 0xD1FF_0002, |rng| {
        let jobs: Vec<Job> = check::vec_of(rng, 2..30, |r| {
            let rel = r.gen_range(0u32..10) as f64 * 0.5;
            let span = (1 + r.gen_range(0u32..6)) as f64 * 0.5;
            (r.gen_range(0.1f64..2.0), rel, rel + span)
        })
        .into_iter()
        .enumerate()
        .map(|(i, (w, r, d))| Job::new(i as u32, w, r, d))
        .collect();
        let alpha = rng.gen_range(1.5f64..3.0);
        assert_bitwise_equal(&jobs, alpha, "grid");
        assert_schedule_feasible(&jobs, alpha, "grid");
    });
}

#[test]
fn zero_width_windows_agree_bitwise() {
    // Degenerate windows (deadline == release) force infinite intensity:
    // both kernels must peel them identically and report infinite energy.
    check::cases(60, 0xD1FF_0003, |rng| {
        let jobs: Vec<Job> = check::vec_of(rng, 1..20, |r| {
            let rel = r.gen_range(0u32..8) as f64;
            let width = if r.gen_range(0u32..3) == 0 {
                0.0
            } else {
                r.gen_range(0.2f64..3.0)
            };
            (r.gen_range(0.1f64..2.0), rel, rel + width)
        })
        .into_iter()
        .enumerate()
        .map(|(i, (w, r, d))| Job::new(i as u32, w, r, d))
        .collect();
        let has_degenerate = jobs.iter().any(|j| j.deadline == j.release);
        let alpha = 2.0;
        assert_bitwise_equal(&jobs, alpha, "zero-width");
        if has_degenerate {
            let sol = yds(&jobs, alpha);
            assert!(
                sol.energy.is_infinite(),
                "zero-width window must cost infinite energy, got {}",
                sol.energy
            );
            // Exactly the degenerate jobs run at infinite speed.
            for (j, &s) in jobs.iter().zip(&sol.speeds) {
                assert_eq!(
                    s.is_infinite(),
                    j.deadline == j.release,
                    "job {} speed {s} vs window width {}",
                    j.id,
                    j.deadline - j.release
                );
            }
        }
    });
}

#[test]
fn named_families_agree_bitwise() {
    for seed in 0..4u64 {
        for (name, inst) in [
            (
                "agreeable",
                families::weighted_agreeable(60, 1, 2.2).gen(seed),
            ),
            ("general", families::general(60, 1, 2.2).gen(seed)),
            ("laminar", families::laminar_nested(60, 1, 2.2, seed)),
            ("crossing", families::crossing(60, 1, 2.2, seed)),
        ] {
            let ctx = format!("{name}/{seed}");
            assert_bitwise_equal(inst.jobs(), inst.alpha(), &ctx);
            assert_schedule_feasible(inst.jobs(), inst.alpha(), &ctx);
        }
    }
}

#[test]
fn peel_size_cutoff_boundary_agrees_bitwise() {
    // The kernel dispatches each peel to the reference scan below
    // `SMALL_PEEL_CUTOFF` (32) active jobs and to the epigraph sweep above
    // it; instances sized right around the cutoff make individual peels
    // land on both sides of the boundary within one solve.
    check::cases(60, 0xD1FF_0004, |rng| {
        let n = rng.gen_range(28usize..38);
        let jobs: Vec<Job> = (0..n)
            .map(|i| {
                let r = rng.gen_range(0.0f64..6.0);
                Job::new(
                    i as u32,
                    rng.gen_range(0.1f64..3.0),
                    r,
                    r + rng.gen_range(0.2f64..8.0),
                )
            })
            .collect();
        let alpha = rng.gen_range(1.4f64..3.0);
        assert_bitwise_equal(&jobs, alpha, "cutoff-boundary");
    });
}

#[test]
fn arena_reuse_agrees_bitwise_across_mixed_calls() {
    // The arena entry point (`yds_energy_in`) reuses one set of kernel
    // buffers across calls — the allocation-free path `YdsEval`/`LiveEval`
    // take. Interleaving instance sizes and families through a single warm
    // arena must leave every energy bit-identical to a fresh solve: no
    // stale buffer contents may leak between calls.
    let mut arena = YdsArena::default();
    let mut rng = <StdRng as ssp_prng::SeedableRng>::seed_from_u64(0xD1FF_0005);
    for round in 0..30 {
        let jobs: Vec<Job> = if round % 3 == 0 {
            let inst = families::laminar_nested(5 + (round % 7) * 13, 1, 2.0, round as u64);
            inst.jobs().to_vec()
        } else if round % 3 == 1 {
            let inst = families::crossing(4 + (round % 5) * 17, 1, 2.0, round as u64);
            inst.jobs().to_vec()
        } else {
            let n = rng.gen_range(1usize..70);
            (0..n)
                .map(|i| {
                    let r = rng.gen_range(0.0f64..10.0);
                    Job::new(
                        i as u32,
                        rng.gen_range(0.05f64..2.5),
                        r,
                        r + rng.gen_range(0.1f64..6.0),
                    )
                })
                .collect()
        };
        let alpha = 1.5 + (round % 4) as f64 * 0.4;
        let warm = yds_energy_in(&mut arena, &jobs, alpha);
        let fresh = yds(&jobs, alpha).energy;
        assert_eq!(
            warm.to_bits(),
            fresh.to_bits(),
            "round {round}: warm arena energy {warm} vs fresh {fresh}"
        );
    }
}

#[test]
fn arena_handles_zero_width_and_duplicate_deadlines() {
    // The degenerate cases go through the same reused buffers: zero-width
    // windows (infinite peel speed) followed by well-posed instances must
    // not poison later calls.
    let mut arena = YdsArena::default();
    let degenerate = vec![
        Job::new(0, 1.0, 2.0, 2.0),
        Job::new(1, 0.5, 0.0, 4.0),
        Job::new(2, 0.7, 2.0, 2.0),
    ];
    let warm = yds_energy_in(&mut arena, &degenerate, 2.0);
    assert!(warm.is_infinite(), "zero-width windows must cost infinity");
    // Duplicate deadlines on a coarse grid, solved right after the
    // degenerate call on the same arena.
    let dup: Vec<Job> = (0..24)
        .map(|i| Job::new(i as u32, 0.3 + (i % 5) as f64 * 0.2, (i % 4) as f64, 4.0))
        .collect();
    let warm = yds_energy_in(&mut arena, &dup, 2.0);
    let fresh = yds_reference(&dup, 2.0).energy;
    assert_eq!(
        warm.to_bits(),
        fresh.to_bits(),
        "duplicate-deadline energy {warm} vs reference {fresh} after a degenerate call"
    );
}

#[test]
fn larger_family_instances_agree_bitwise() {
    // Deeper laminar/crossing cases than `named_families_agree_bitwise`:
    // enough peels that the epigraph sweep, the start filter, and the
    // per-peel dispatch all fire many times (reference side stays feasible
    // for tier-1 at n=160).
    for (name, inst) in [
        ("laminar", families::laminar_nested(160, 1, 2.0, 7)),
        ("crossing", families::crossing(160, 1, 2.0, 7)),
        ("general", families::general(160, 1, 2.0).gen(7)),
    ] {
        assert_bitwise_equal(inst.jobs(), inst.alpha(), name);
    }
}

#[test]
fn one_large_instance_agrees_bitwise() {
    // A single bigger case so the pruning paths see real depth in tier-1
    // without making the suite slow (the reference side is O(n³)).
    let mut rng = <StdRng as ssp_prng::SeedableRng>::seed_from_u64(0xB16);
    let jobs: Vec<Job> = (0..300)
        .map(|i| {
            let r = rng.gen_range(0.0f64..150.0);
            Job::new(
                i as u32,
                rng.gen_range(0.1f64..3.0),
                r,
                r + rng.gen_range(0.5f64..20.0),
            )
        })
        .collect();
    assert_bitwise_equal(&jobs, 2.4, "large");
}
