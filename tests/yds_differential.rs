//! Differential tests for the fast YDS kernel (tier-1, pinned seeds).
//!
//! The fast critical-interval kernel behind `yds()` prunes starts and sweep
//! tails with certified upper bounds; the retained reference peel
//! (`yds_reference`) scans every candidate. The two must agree **bit for
//! bit** — same peel list, same speeds, same energy — because the whole
//! non-migratory stack (local search transcripts, branch-and-bound pruning,
//! the `YdsEval` memo) relies on energies being exactly reproducible.
//!
//! Families covered: seeded random windows, agreeable staircases, laminar
//! nests, heavy-crossing staircases, duplicate deadlines on a coarse grid,
//! and degenerate zero-width windows (release == deadline ⇒ infinite speed).
//! On non-degenerate instances the explicit `yds_schedule` must also stay
//! EDF-feasible with validated energy equal to the kernel's.

use ssp_model::schedule::ValidationOptions;
use ssp_model::{Instance, Job};
use ssp_prng::{check, Rng, StdRng};
use ssp_single::yds::{yds, yds_reference, yds_schedule};
use ssp_workloads::families;

/// Assert the two kernels produce bitwise-identical solutions.
fn assert_bitwise_equal(jobs: &[Job], alpha: f64, ctx: &str) {
    let fast = yds(jobs, alpha);
    let reference = yds_reference(jobs, alpha);
    assert_eq!(
        fast.peels, reference.peels,
        "{ctx}: peel sequences diverged"
    );
    assert_eq!(
        fast.energy.to_bits(),
        reference.energy.to_bits(),
        "{ctx}: energy {} vs reference {}",
        fast.energy,
        reference.energy
    );
    assert_eq!(fast.speeds.len(), reference.speeds.len());
    for (i, (sf, sr)) in fast.speeds.iter().zip(&reference.speeds).enumerate() {
        assert_eq!(
            sf.to_bits(),
            sr.to_bits(),
            "{ctx}: speed of job {i} diverged ({sf} vs {sr})"
        );
    }
}

/// Validate the full `yds_schedule` pipeline on a (non-degenerate) job set.
fn assert_schedule_feasible(jobs: &[Job], alpha: f64, ctx: &str) {
    let (sol, schedule) = yds_schedule(jobs, alpha, 0);
    let inst = Instance::new(jobs.to_vec(), 1, alpha).expect("valid instance");
    let stats = schedule
        .validate(&inst, ValidationOptions::non_migratory())
        .unwrap_or_else(|e| panic!("{ctx}: YDS schedule failed validation: {e}"));
    assert!(
        (stats.energy - sol.energy).abs() <= 1e-6 * sol.energy.max(1e-12),
        "{ctx}: schedule energy {} vs kernel energy {}",
        stats.energy,
        sol.energy
    );
}

#[test]
fn random_instances_agree_bitwise_and_schedule() {
    check::cases(120, 0xD1FF_0001, |rng| {
        let jobs: Vec<Job> = check::vec_of(rng, 1..40, |r| {
            (
                r.gen_range(0.05f64..4.0),
                r.gen_range(0.0f64..12.0),
                r.gen_range(0.1f64..5.0),
            )
        })
        .into_iter()
        .enumerate()
        .map(|(i, (w, r, len))| Job::new(i as u32, w, r, r + len))
        .collect();
        let alpha = rng.gen_range(1.3f64..3.2);
        assert_bitwise_equal(&jobs, alpha, "random");
        assert_schedule_feasible(&jobs, alpha, "random");
    });
}

#[test]
fn duplicate_deadlines_on_a_grid_agree_bitwise() {
    // Snapping both endpoints to a coarse grid creates many exactly-equal
    // deadlines (and releases), exercising the stable-sort tie-breaks.
    check::cases(80, 0xD1FF_0002, |rng| {
        let jobs: Vec<Job> = check::vec_of(rng, 2..30, |r| {
            let rel = r.gen_range(0u32..10) as f64 * 0.5;
            let span = (1 + r.gen_range(0u32..6)) as f64 * 0.5;
            (r.gen_range(0.1f64..2.0), rel, rel + span)
        })
        .into_iter()
        .enumerate()
        .map(|(i, (w, r, d))| Job::new(i as u32, w, r, d))
        .collect();
        let alpha = rng.gen_range(1.5f64..3.0);
        assert_bitwise_equal(&jobs, alpha, "grid");
        assert_schedule_feasible(&jobs, alpha, "grid");
    });
}

#[test]
fn zero_width_windows_agree_bitwise() {
    // Degenerate windows (deadline == release) force infinite intensity:
    // both kernels must peel them identically and report infinite energy.
    check::cases(60, 0xD1FF_0003, |rng| {
        let jobs: Vec<Job> = check::vec_of(rng, 1..20, |r| {
            let rel = r.gen_range(0u32..8) as f64;
            let width = if r.gen_range(0u32..3) == 0 {
                0.0
            } else {
                r.gen_range(0.2f64..3.0)
            };
            (r.gen_range(0.1f64..2.0), rel, rel + width)
        })
        .into_iter()
        .enumerate()
        .map(|(i, (w, r, d))| Job::new(i as u32, w, r, d))
        .collect();
        let has_degenerate = jobs.iter().any(|j| j.deadline == j.release);
        let alpha = 2.0;
        assert_bitwise_equal(&jobs, alpha, "zero-width");
        if has_degenerate {
            let sol = yds(&jobs, alpha);
            assert!(
                sol.energy.is_infinite(),
                "zero-width window must cost infinite energy, got {}",
                sol.energy
            );
            // Exactly the degenerate jobs run at infinite speed.
            for (j, &s) in jobs.iter().zip(&sol.speeds) {
                assert_eq!(
                    s.is_infinite(),
                    j.deadline == j.release,
                    "job {} speed {s} vs window width {}",
                    j.id,
                    j.deadline - j.release
                );
            }
        }
    });
}

#[test]
fn named_families_agree_bitwise() {
    for seed in 0..4u64 {
        for (name, inst) in [
            (
                "agreeable",
                families::weighted_agreeable(60, 1, 2.2).gen(seed),
            ),
            ("general", families::general(60, 1, 2.2).gen(seed)),
            ("laminar", families::laminar_nested(60, 1, 2.2, seed)),
            ("crossing", families::crossing(60, 1, 2.2, seed)),
        ] {
            let ctx = format!("{name}/{seed}");
            assert_bitwise_equal(inst.jobs(), inst.alpha(), &ctx);
            assert_schedule_feasible(inst.jobs(), inst.alpha(), &ctx);
        }
    }
}

#[test]
fn one_large_instance_agrees_bitwise() {
    // A single bigger case so the pruning paths see real depth in tier-1
    // without making the suite slow (the reference side is O(n³)).
    let mut rng = <StdRng as ssp_prng::SeedableRng>::seed_from_u64(0xB16);
    let jobs: Vec<Job> = (0..300)
        .map(|i| {
            let r = rng.gen_range(0.0f64..150.0);
            Job::new(
                i as u32,
                rng.gen_range(0.1f64..3.0),
                r,
                r + rng.gen_range(0.5f64..20.0),
            )
        })
        .collect();
    assert_bitwise_equal(&jobs, 2.4, "large");
}
