//! Differential test wall for the parallel BAL probe ladder (tier-1).
//!
//! The ladder fans out each round's candidate speeds onto per-probe scratch
//! solvers via `par_map_mut`. Parallelism is required to change **wall time
//! only**: for a fixed instance and strategy, the probe transcript (every
//! `(speed, feasible)` pair in order), the per-round peel sets, the speeds,
//! and the total energy must be bit-identical at every thread count. These
//! tests replay the same instances under pinned widths 1, 2, and 8 (via
//! `set_thread_override`, which takes precedence over `SSP_THREADS`) and
//! compare the full transcripts.
//!
//! A second wall cross-checks the two probe strategies: `Ladder` and
//! `Bisection` take different probe paths, but both stop inside the
//! feasibility classifier's 1e-9 relative tolerance, so their energies must
//! agree to ~1e-8 relative (not bit-for-bit — the transcripts legitimately
//! differ).

use ssp_migratory::bal::{try_bal_with_wap_strategy, BalSolution, ProbeStrategy};
use ssp_migratory::wap::Wap;
use ssp_model::par::set_thread_override;
use ssp_model::resource::Budget;
use ssp_model::Instance;
use ssp_workloads::families;

fn solve(instance: &Instance, strategy: ProbeStrategy) -> BalSolution {
    let (wap, intervals) = Wap::from_instance(instance);
    try_bal_with_wap_strategy(instance, wap, intervals, Budget::unlimited(), strategy)
        .expect("feasible instance must solve")
}

fn solve_at_width(instance: &Instance, strategy: ProbeStrategy, width: usize) -> BalSolution {
    let prev = set_thread_override(Some(width));
    let sol = solve(instance, strategy);
    set_thread_override(prev);
    sol
}

/// Assert two solutions of the same instance + strategy are bit-identical:
/// same probe transcript per round, same peel sets, same speeds and energy.
fn assert_transcripts_identical(a: &BalSolution, b: &BalSolution, ctx: &str) {
    assert_eq!(
        a.energy.to_bits(),
        b.energy.to_bits(),
        "{ctx}: energy diverged ({} vs {})",
        a.energy,
        b.energy
    );
    assert_eq!(
        a.rounds.len(),
        b.rounds.len(),
        "{ctx}: round count diverged"
    );
    for (r, (ra, rb)) in a.rounds.iter().zip(&b.rounds).enumerate() {
        assert_eq!(
            ra.speed.to_bits(),
            rb.speed.to_bits(),
            "{ctx}: round {r} critical speed diverged ({} vs {})",
            ra.speed,
            rb.speed
        );
        assert_eq!(ra.jobs, rb.jobs, "{ctx}: round {r} job set diverged");
        assert_eq!(
            ra.saturated, rb.saturated,
            "{ctx}: round {r} saturated set diverged"
        );
        assert_eq!(
            ra.probes.len(),
            rb.probes.len(),
            "{ctx}: round {r} probe count diverged"
        );
        for (k, (pa, pb)) in ra.probes.iter().zip(&rb.probes).enumerate() {
            assert_eq!(
                pa.0.to_bits(),
                pb.0.to_bits(),
                "{ctx}: round {r} probe {k} speed diverged ({} vs {})",
                pa.0,
                pb.0
            );
            assert_eq!(
                pa.1, pb.1,
                "{ctx}: round {r} probe {k} verdict diverged at speed {}",
                pa.0
            );
        }
    }
    assert_eq!(
        a.flow_computations, b.flow_computations,
        "{ctx}: flow-computation count diverged"
    );
    for (i, (sa, sb)) in a.speeds.speeds().iter().zip(b.speeds.speeds()).enumerate() {
        assert_eq!(
            sa.to_bits(),
            sb.to_bits(),
            "{ctx}: speed of job {i} diverged ({sa} vs {sb})"
        );
    }
}

/// The instance matrix for the walls: one per family, sized so every ladder
/// code path fires (multi-round peels, Newton cuts, fringe exits) while
/// keeping tier-1 fast.
fn instances() -> Vec<(&'static str, Instance)> {
    vec![
        ("general", families::general(48, 3, 2.0).gen(0xBA101)),
        ("laminar", families::laminar_nested(48, 3, 2.0, 0xBA102)),
        ("crossing", families::crossing(48, 3, 2.0, 0xBA103)),
        ("bursty", families::bursty(40, 4, 2.5).gen(0xBA104)),
    ]
}

#[test]
fn ladder_transcripts_are_thread_count_invariant() {
    for (name, instance) in instances() {
        let serial = solve_at_width(&instance, ProbeStrategy::Ladder, 1);
        for width in [2usize, 8] {
            let parallel = solve_at_width(&instance, ProbeStrategy::Ladder, width);
            let ctx = format!("{name} @ width {width}");
            assert_transcripts_identical(&serial, &parallel, &ctx);
        }
    }
}

#[test]
fn bisection_transcripts_are_thread_count_invariant() {
    // Bisection probes serially regardless of width; the wall still pins it
    // so a future regression (e.g. a parallel refactor leaking into the
    // serial driver) cannot slip through.
    for (name, instance) in instances() {
        let serial = solve_at_width(&instance, ProbeStrategy::Bisection, 1);
        let parallel = solve_at_width(&instance, ProbeStrategy::Bisection, 8);
        let ctx = format!("{name} @ width 8");
        assert_transcripts_identical(&serial, &parallel, &ctx);
    }
}

#[test]
fn ladder_and_bisection_agree_on_energy() {
    for (name, instance) in instances() {
        let ladder = solve(&instance, ProbeStrategy::Ladder);
        let bisect = solve(&instance, ProbeStrategy::Bisection);
        let rel = (ladder.energy - bisect.energy).abs() / bisect.energy.max(1e-12);
        assert!(
            rel <= 1e-8,
            "{name}: strategy energies diverged beyond tolerance: ladder {} vs bisect {} (rel {rel:.3e})",
            ladder.energy,
            bisect.energy
        );
        // Both must also validate as explicit schedules.
        for (tag, sol) in [("ladder", &ladder), ("bisect", &bisect)] {
            let schedule = sol.schedule(&instance);
            let stats = schedule
                .validate(&instance, Default::default())
                .unwrap_or_else(|e| panic!("{name}/{tag}: schedule failed validation: {e}"));
            assert!(
                (stats.energy - sol.energy).abs() <= 1e-6 * sol.energy,
                "{name}/{tag}: schedule energy {} vs solver energy {}",
                stats.energy,
                sol.energy
            );
        }
    }
}

#[test]
fn ladder_budget_salvage_is_thread_count_invariant() {
    // Budget exhaustion mid-ladder takes the salvage path (fix remaining
    // jobs at the feasible bracket end); the truncation point is charged
    // per planned probe *before* the fan-out, so it too must be
    // width-invariant.
    let instance = families::laminar_nested(32, 2, 2.0, 0xBA105);
    let solve_budgeted = |width: usize| {
        let prev = set_thread_override(Some(width));
        let (wap, intervals) = Wap::from_instance(&instance);
        let sol = try_bal_with_wap_strategy(
            &instance,
            wap,
            intervals,
            Budget::iterations(25),
            ProbeStrategy::Ladder,
        )
        .expect("budgeted solve must salvage");
        set_thread_override(prev);
        sol
    };
    let serial = solve_budgeted(1);
    assert_eq!(
        serial.budget_exhausted,
        Some("iterations"),
        "budget must actually exhaust for the salvage wall to bite"
    );
    for width in [2usize, 8] {
        let parallel = solve_budgeted(width);
        let ctx = format!("budget salvage @ width {width}");
        assert_transcripts_identical(&serial, &parallel, &ctx);
    }
}
