//! Property tests for the pricing edges of the online dispatch stack
//! (tier-1, pinned seeds).
//!
//! Two memoized YDS pricers sit on the dispatch hot path:
//!
//! * [`LiveEval`] prices a machine's live window for the density-aware
//!   streaming policy — but only while the total live job count stays at or
//!   under the engine's `price_cap`; past the cap it falls back to
//!   overlapped-density counting.
//! * [`YdsEval`] prices local-search candidates over a closed instance and
//!   commits them with `apply`.
//!
//! The walls here pin the edges of both: the price cap must be invisible
//! until it actually binds (and really engage past it), a memoized marginal
//! must equal the fresh-kernel marginal bit for bit no matter how windows
//! mutate between queries, and `apply` must never leave a stale price
//! behind in the memoized per-machine energies.

use ssp_core::eval::{Candidate, LiveEval, YdsEval};
use ssp_model::Job;
use ssp_online::{EngineOptions, LbMode, Policy, StreamEngine};
use ssp_prng::{check, Rng, SeedableRng, StdRng};
use ssp_single::yds::yds;
use ssp_workloads::{families, stream_family};

/// Run a density-aware stream under `price_cap` and return the dispatch
/// sequence plus the finished report.
fn run_capped(n: usize, seed: u64, price_cap: usize) -> (Vec<usize>, ssp_online::StreamReport) {
    let spec = stream_family("bursty", 3, 2.2).expect("known family");
    let opts = EngineOptions::new(3, 2.2)
        .policy(Policy::DensityAware)
        .lower_bound(LbMode::Off)
        .price_cap(price_cap);
    let mut engine = StreamEngine::new(opts).unwrap();
    let mut placements = Vec::with_capacity(n);
    for job in spec.jobs(seed).take(n) {
        placements.push(engine.push(job).unwrap());
    }
    (placements, engine.finish().unwrap())
}

#[test]
fn price_cap_is_invisible_until_it_binds() {
    // Reference run with an unbindable cap: every decision prices marginal
    // YDS energies exactly.
    let (exact_placements, exact) = run_capped(300, 7, usize::MAX >> 1);
    assert_eq!(exact.density_fallbacks, 0, "unbindable cap must never bind");

    // A cap at the observed live peak never binds either (the policy
    // prices when `live <= cap`, and pick-time live is below the post-push
    // peak), so the whole run must replay bit-identically.
    let (tight_placements, tight) = run_capped(300, 7, exact.peak_live);
    assert_eq!(
        tight.density_fallbacks, 0,
        "cap at the live peak must not bind"
    );
    assert_eq!(
        exact_placements, tight_placements,
        "a non-binding cap changed a dispatch decision"
    );
    assert_eq!(
        exact.energy.to_bits(),
        tight.energy.to_bits(),
        "a non-binding cap changed the schedule energy"
    );

    // Cap 0: every multi-job decision falls back to overlap counting. The
    // run must still be total and produce a valid finite schedule.
    let (_, capped) = run_capped(300, 7, 0);
    assert!(
        capped.density_fallbacks > 0,
        "a zero cap must engage the overlap fallback"
    );
    assert!(
        capped.energy.is_finite() && capped.energy > 0.0,
        "fallback schedule energy must stay finite, got {}",
        capped.energy
    );
    assert_eq!(capped.arrivals, 300);
}

#[test]
fn live_marginal_matches_fresh_kernel_bitwise() {
    // LiveEval's memoized marginal vs the fresh kernel difference, across
    // randomized windows that grow, shrink (expiry-style retain), and
    // repeat — repeats exercise memo hits, shrinks exercise the key
    // discipline (a changed window must never alias an old price).
    check::cases(40, 0x9A1CE, |rng| {
        let alpha = rng.gen_range(1.4f64..3.0);
        let mut eval = LiveEval::new(alpha);
        let mut window: Vec<Job> = Vec::new();
        let mut next_id = 0u32;
        for _ in 0..30 {
            let action = rng.gen_range(0u32..4);
            if action == 0 && !window.is_empty() {
                // Expire the oldest jobs, order-preserving.
                let cut = rng.gen_range(0usize..window.len());
                window.drain(..cut);
            } else {
                let r = rng.gen_range(0.0f64..8.0);
                window.push(Job::new(
                    next_id,
                    rng.gen_range(0.05f64..2.0),
                    r,
                    r + rng.gen_range(0.1f64..5.0),
                ));
                next_id += 1;
            }
            let r = rng.gen_range(0.0f64..8.0);
            let candidate = Job::new(
                next_id,
                rng.gen_range(0.05f64..2.0),
                r,
                r + rng.gen_range(0.1f64..5.0),
            );
            next_id += 1;
            let memoized = eval.marginal(&window, &candidate);
            let mut appended = window.clone();
            appended.push(candidate);
            let fresh = yds(&appended, alpha).energy - yds(&window, alpha).energy;
            assert_eq!(
                memoized.to_bits(),
                fresh.to_bits(),
                "marginal diverged from fresh kernel: {memoized} vs {fresh} \
                 (window of {} jobs)",
                window.len()
            );
        }
    });
}

#[test]
fn apply_never_serves_a_stale_machine_price() {
    // Random walks of Move/Swap applies over a YdsEval. After every
    // commit, each machine's memoized energy must equal a fresh kernel
    // solve of its (insertion-ordered) job list — a stale memo entry or a
    // missed invalidation shows up as a bit mismatch. The shadow groups
    // mirror the documented order contract: append on add, order-
    // preserving filter on remove.
    let instance = families::general(40, 4, 2.1).gen(0x9A1CF);
    let m = instance.machines();
    let mut rng = <StdRng as SeedableRng>::seed_from_u64(0x9A1D0);
    let mut eval = YdsEval::new(&instance);
    let mut shadow: Vec<Vec<usize>> = vec![Vec::new(); m];
    let mut machine_of: Vec<usize> = Vec::with_capacity(instance.len());
    for i in 0..instance.len() {
        let p = rng.gen_range(0usize..m);
        eval.add(i, p);
        shadow[p].push(i);
        machine_of.push(p);
    }

    let verify = |eval: &YdsEval, shadow: &[Vec<usize>], step: usize| {
        for (p, group) in shadow.iter().enumerate() {
            let jobs: Vec<Job> = group.iter().map(|&i| *instance.job(i)).collect();
            let fresh = yds(&jobs, instance.alpha()).energy;
            assert_eq!(
                eval.machine_energy(p).to_bits(),
                fresh.to_bits(),
                "step {step}: machine {p} serves a stale price: memo {} vs fresh {fresh}",
                eval.machine_energy(p)
            );
        }
    };
    verify(&eval, &shadow, 0);

    for step in 1..=60 {
        let candidate = if rng.gen_range(0u32..2) == 0 {
            let job = rng.gen_range(0usize..instance.len());
            let to = (machine_of[job] + 1 + rng.gen_range(0usize..m - 1)) % m;
            Candidate::Move { job, to }
        } else {
            let a = rng.gen_range(0usize..instance.len());
            let mut b = rng.gen_range(0usize..instance.len());
            while b == a || machine_of[b] == machine_of[a] {
                b = rng.gen_range(0usize..instance.len());
            }
            Candidate::Swap { a, b }
        };
        // The committed delta must be exactly what pricing promised.
        let before: f64 = (0..m).map(|p| eval.machine_energy(p)).sum();
        let promised = eval.delta_energy(candidate);
        eval.apply(candidate);
        match candidate {
            Candidate::Move { job, to } => {
                let from = machine_of[job];
                shadow[from].retain(|&k| k != job);
                shadow[to].push(job);
                machine_of[job] = to;
            }
            Candidate::Swap { a, b } => {
                let (pa, pb) = (machine_of[a], machine_of[b]);
                shadow[pa].retain(|&k| k != a);
                shadow[pa].push(b);
                shadow[pb].retain(|&k| k != b);
                shadow[pb].push(a);
                machine_of[a] = pb;
                machine_of[b] = pa;
            }
        }
        let after: f64 = (0..m).map(|p| eval.machine_energy(p)).sum();
        assert!(
            ((after - before) - promised).abs() <= 1e-9 * before.abs().max(1.0),
            "step {step}: committed delta {} vs promised {promised}",
            after - before
        );
        verify(&eval, &shadow, step);
    }
}
