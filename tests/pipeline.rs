//! End-to-end integration tests: every public pipeline from instance to
//! validated schedule, crossing all workspace crates.

use speedscale::core::assignment::{assignment_energy, assignment_schedule};
use speedscale::core::classified::classified_assignment;
use speedscale::core::exact::exact_nonmigratory;
use speedscale::core::list::{least_loaded, marginal_energy_greedy};
use speedscale::core::online::{avr_m, oa_m};
use speedscale::core::relax::relax_round;
use speedscale::core::rr::rr_assignment;
use speedscale::migratory::bal::bal;
use speedscale::migratory::kkt::certify;
use speedscale::model::numeric::Tol;
use speedscale::model::schedule::ValidationOptions;
use speedscale::workloads::{families, subseed};

/// The fundamental ordering every run must respect:
/// migratory OPT <= non-migratory OPT <= every non-migratory heuristic,
/// and (on small instances) exact non-migratory <= all heuristics.
#[test]
fn energy_hierarchy_holds_across_families() {
    for (fam, seed) in [
        ("unit_agreeable", 1u64),
        ("unit_arbitrary", 2),
        ("weighted_agreeable", 3),
        ("general", 4),
    ] {
        let spec = match fam {
            "unit_agreeable" => families::unit_agreeable(9, 2, 2.0),
            "unit_arbitrary" => families::unit_arbitrary(9, 2, 2.0),
            "weighted_agreeable" => families::weighted_agreeable(9, 2, 2.0),
            _ => families::general(9, 2, 2.0),
        };
        let inst = spec.gen(subseed(0xFEED, seed));
        let mig = bal(&inst).energy;
        let opt = exact_nonmigratory(&inst).energy;
        assert!(
            opt >= mig * (1.0 - 1e-6),
            "{fam}: non-mig OPT {opt} below migratory {mig}"
        );
        for (name, assign) in [
            ("rr", rr_assignment(&inst)),
            ("classified", classified_assignment(&inst)),
            ("least_loaded", least_loaded(&inst)),
            ("relax_round", relax_round(&inst)),
            ("greedy", marginal_energy_greedy(&inst)),
        ] {
            let e = assignment_energy(&inst, &assign);
            assert!(
                e >= opt * (1.0 - 1e-9),
                "{fam}/{name}: heuristic {e} beat the exact optimum {opt}"
            );
        }
    }
}

/// Every algorithm's schedule must pass the audited validator, and its
/// energy must equal the assignment objective.
#[test]
fn all_schedules_validate_with_matching_energy() {
    let inst = families::general(40, 3, 2.3).gen(99);
    let lb = bal(&inst);

    // Migratory schedule.
    let mig_sched = lb.schedule(&inst);
    let mig_stats = mig_sched.validate(&inst, Default::default()).unwrap();
    assert!((mig_stats.energy - lb.energy).abs() <= 1e-6 * lb.energy);

    // Non-migratory schedules.
    for assign in [
        rr_assignment(&inst),
        classified_assignment(&inst),
        least_loaded(&inst),
        relax_round(&inst),
        marginal_energy_greedy(&inst),
    ] {
        let e = assignment_energy(&inst, &assign);
        let s = assignment_schedule(&inst, &assign);
        let stats = s
            .validate(&inst, ValidationOptions::non_migratory())
            .unwrap();
        assert!((stats.energy - e).abs() <= 1e-6 * e);
        assert!(e >= lb.energy * (1.0 - 1e-6));
    }

    // Online schedules (migration allowed).
    for s in [avr_m(&inst), oa_m(&inst)] {
        let stats = s.validate(&inst, Default::default()).unwrap();
        assert!(stats.energy >= lb.energy * (1.0 - 1e-6));
    }
}

/// The KKT certificate accepts BAL across a wide seed sweep — this is the
/// workspace's strongest optimality evidence for the lower-bound oracle.
#[test]
fn kkt_certificates_over_seed_sweep() {
    for seed in 0..12u64 {
        let inst = families::general(20, 3, 2.0).gen(subseed(0xCE27, seed));
        let sol = bal(&inst);
        certify(&inst, &sol, Tol::rel(1e-6)).unwrap_or_else(|v| {
            panic!("KKT certificate failed on seed {seed}: {v}");
        });
    }
}

/// Scale invariance end to end: scaling works by c scales *all* algorithm
/// energies by c^alpha; stretching time scales them by c^(1-alpha).
#[test]
fn scale_laws_hold_end_to_end() {
    let inst = families::general(12, 2, 2.0).gen(5);
    let c = 3.0;
    let alpha = 2.0;

    let e0 = bal(&inst).energy;
    let e0_rr = assignment_energy(&inst, &rr_assignment(&inst));

    let scaled = inst.scale_works(c).unwrap();
    assert!((bal(&scaled).energy - e0 * c.powf(alpha)).abs() <= 1e-6 * e0 * c.powf(alpha));
    let rr_scaled = assignment_energy(&scaled, &rr_assignment(&scaled));
    assert!((rr_scaled - e0_rr * c.powf(alpha)).abs() <= 1e-6 * rr_scaled);

    let stretched = inst.scale_time(c).unwrap();
    let expect = e0 * c.powf(1.0 - alpha);
    assert!((bal(&stretched).energy - expect).abs() <= 1e-6 * expect);
}

/// Unit-work agreeable instances: RR equals the exact optimum on every seed
/// (the paper's R1, end to end through the public API).
#[test]
fn r1_optimality_sweep() {
    for seed in 0..8u64 {
        let inst = families::unit_agreeable(9, 2, 2.5).gen(subseed(0x0521, seed));
        let rr = assignment_energy(&inst, &rr_assignment(&inst));
        let opt = exact_nonmigratory(&inst).energy;
        assert!(
            rr <= opt * (1.0 + 1e-6),
            "seed {seed}: RR {rr} suboptimal vs {opt}"
        );
    }
}

/// Adding machines monotonically reduces (or keeps) optimal energy, for both
/// the migratory optimum and the exact non-migratory optimum.
#[test]
fn machine_monotonicity() {
    let base = families::general(8, 1, 2.0).gen(17);
    let mut prev_mig = f64::INFINITY;
    let mut prev_exact = f64::INFINITY;
    for m in 1..=4 {
        let inst = base.with_machines(m).unwrap();
        let mig = bal(&inst).energy;
        let exact = exact_nonmigratory(&inst).energy;
        assert!(mig <= prev_mig * (1.0 + 1e-9));
        assert!(exact <= prev_exact * (1.0 + 1e-9));
        assert!(exact >= mig * (1.0 - 1e-6));
        prev_mig = mig;
        prev_exact = exact;
    }
}

/// With m >= n, migration is useless: exact non-migratory == migratory
/// (each job can have its own machine).
#[test]
fn enough_machines_close_the_migration_gap() {
    let inst = families::general(6, 6, 2.0).gen(23);
    let mig = bal(&inst).energy;
    let exact = exact_nonmigratory(&inst).energy;
    assert!(
        (exact - mig).abs() <= 1e-6 * mig,
        "gap should vanish with m >= n: {exact} vs {mig}"
    );
}

/// io round-trip composes with solving: parse(emit(x)) produces identical
/// algorithm results.
#[test]
fn io_roundtrip_preserves_solutions() {
    use speedscale::model::io;
    let inst = families::weighted_agreeable(15, 2, 2.0).gen(31);
    let text = io::emit(&inst);
    let back = io::parse(&text).unwrap();
    assert_eq!(back, inst);
    assert_eq!(bal(&back).energy, bal(&inst).energy);
}
