//! Long-running stress tests, excluded from the default run.
//! Execute with `cargo test --release -- --ignored`.

use speedscale::core::assignment::assignment_energy;
use speedscale::core::rr::rr_assignment;
use speedscale::migratory::bal::bal;
use speedscale::migratory::kkt::certify;
use speedscale::model::numeric::Tol;
use speedscale::workloads::{families, subseed};

/// BAL on large instances: certificates and schedules must survive scale.
#[test]
#[ignore = "several seconds; run with --ignored"]
fn bal_large_instances_certify() {
    for (n, m) in [(400usize, 4usize), (800, 8)] {
        let inst = families::general(n, m, 2.0).gen(subseed(0x57E5, n as u64));
        let sol = bal(&inst);
        certify(&inst, &sol, Tol::rel(1e-6)).unwrap_or_else(|v| {
            panic!("certificate failed at n={n}: {v}");
        });
        let schedule = sol.schedule(&inst);
        let stats = schedule.validate(&inst, Default::default()).unwrap();
        assert!((stats.energy - sol.energy).abs() <= 1e-6 * sol.energy);
    }
}

/// Wide randomized sweep: the energy hierarchy on 200 random instances.
#[test]
#[ignore = "several seconds; run with --ignored"]
fn hierarchy_sweep_200_seeds() {
    for seed in 0..200u64 {
        let inst = families::general(25, 3, 2.0).gen(subseed(0x57E6, seed));
        let lb = bal(&inst).energy;
        let rr = assignment_energy(&inst, &rr_assignment(&inst));
        assert!(
            rr >= lb * (1.0 - 1e-6),
            "seed {seed}: RR {rr} below LB {lb}"
        );
        assert!(rr <= 3.0 * lb, "seed {seed}: RR implausibly bad");
    }
}

/// Online algorithms on long bursty traces.
#[test]
#[ignore = "several seconds; run with --ignored"]
fn online_long_traces() {
    use speedscale::core::online::{avr_m, oa_m};
    let inst = families::bursty(300, 6, 2.0).gen(0xB16);
    let opt = bal(&inst).energy;
    for s in [avr_m(&inst), oa_m(&inst)] {
        let stats = s.validate(&inst, Default::default()).unwrap();
        assert!(stats.energy >= opt * (1.0 - 1e-6));
        assert!(stats.energy <= 8.0 * opt);
    }
}
