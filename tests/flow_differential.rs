//! Differential tests for the flow kernels (tier-1, pinned seeds).
//!
//! Three independent engines solve the same seeded random networks:
//!
//! * `FlowNetwork` — the production f64 Dinic engine (with its parametric
//!   warm-restart path);
//! * `PushRelabel` — the highest-label push-relabel cross-check engine;
//! * `IntFlowNetwork` — the exact integer Edmonds–Karp reference.
//!
//! On integer-valued capacities all three must agree exactly. On top of
//! that, the warm-restart path (`set_capacity` + `max_flow_incremental`)
//! must match a cold from-scratch solve after *arbitrary* randomized
//! capacity update sequences — the safety net for the warm-started BAL
//! bisection — and the min-cut certificate must stay valid after every
//! incremental repair.

use ssp_maxflow::reference::IntFlowNetwork;
use ssp_maxflow::{EdgeId, FlowNetwork, PushRelabel, SweepFlow};
use ssp_prng::{check, Rng, StdRng};

/// A random directed graph: node count and edge list `(u, v, cap)` with
/// integer-valued f64 capacities (exact in all three engines).
fn random_graph(rng: &mut StdRng) -> (usize, Vec<(usize, usize, f64)>) {
    let n = rng.gen_range(3usize..12);
    let edges = check::vec_of(rng, 1..60, |r| {
        (
            r.gen_range(0usize..12),
            r.gen_range(0usize..12),
            r.gen_range(0u32..100) as f64,
        )
    })
    .into_iter()
    .filter(|&(u, v, _)| u < n && v < n && u != v)
    .collect();
    (n, edges)
}

fn build_dinic(n: usize, edges: &[(usize, usize, f64)]) -> (FlowNetwork, Vec<EdgeId>) {
    let mut net = FlowNetwork::new(n);
    let ids = edges
        .iter()
        .map(|&(u, v, c)| net.add_edge(u, v, c))
        .collect();
    (net, ids)
}

/// Certify `value` as a max flow of `net`: the canonical cut's capacity
/// equals it, every cut edge is saturated, and per-node conservation holds
/// for the flow read back edge by edge.
fn certify(net: &FlowNetwork, edges: &[(usize, usize, f64)], ids: &[EdgeId], value: f64) {
    let side = net.residual_reachable_from_source();
    let n = side.len();
    assert!(side[0], "source on its own side");
    let cut = net.min_cut_edges();
    let cut_cap: f64 = cut.iter().map(|&e| net.flow(e) + net.residual(e)).sum();
    for &e in &cut {
        assert!(net.is_saturated(e), "cut edge with residual slack");
    }
    assert!(
        (cut_cap - value).abs() <= 1e-6 * (1.0 + value.abs()),
        "cut {cut_cap} vs flow {value}"
    );
    for node in 1..n - 1 {
        let mut balance = 0.0;
        for (&(u, v, _), &id) in edges.iter().zip(ids) {
            if v == node {
                balance += net.flow(id);
            }
            if u == node {
                balance -= net.flow(id);
            }
        }
        assert!(
            balance.abs() <= 1e-6 * (1.0 + value.abs()),
            "node {node} imbalance {balance}"
        );
    }
}

/// Dinic == push-relabel == exact integer reference on random networks.
#[test]
fn three_engines_agree_on_random_networks() {
    check::cases(96, 0xD1FF_0001, |rng| {
        let (n, edges) = random_graph(rng);
        let (s, t) = (0, n - 1);
        let (mut dinic, _) = build_dinic(n, &edges);
        let mut pr = PushRelabel::new(n);
        let mut exact = IntFlowNetwork::new(n);
        for &(u, v, c) in &edges {
            pr.add_edge(u, v, c);
            exact.add_edge(u, v, c as u64);
        }
        let f_dinic = dinic.max_flow(s, t);
        let f_pr = pr.max_flow(s, t);
        let f_exact = exact.max_flow(s, t) as f64;
        assert!(
            (f_dinic - f_exact).abs() < 1e-6,
            "dinic {f_dinic} vs exact {f_exact}"
        );
        assert!(
            (f_pr - f_exact).abs() < 1e-6,
            "push-relabel {f_pr} vs exact {f_exact}"
        );
    });
}

/// Warm-start == cold-start after randomized capacity update sequences,
/// with the min-cut certificate re-validated after every repair.
#[test]
fn warm_start_matches_cold_after_random_updates() {
    check::cases(96, 0xD1FF_0002, |rng| {
        let (n, mut edges) = random_graph(rng);
        if edges.is_empty() {
            return;
        }
        let (s, t) = (0, n - 1);
        let (mut warm, ids) = build_dinic(n, &edges);
        warm.max_flow(s, t);
        for _round in 0..6 {
            // Mutate a few capacities: mix of shrinks (often below the
            // carried flow), growths, zeroings, and fractional values.
            for _ in 0..rng.gen_range(1usize..4) {
                let k = rng.gen_range(0usize..edges.len());
                let cap = match rng.gen_range(0u32..4) {
                    0 => 0.0,
                    1 => rng.gen_range(0u32..100) as f64,
                    2 => edges[k].2 * rng.gen_range(0.0f64..1.0),
                    _ => edges[k].2 + rng.gen_range(0.0f64..50.0),
                };
                edges[k].2 = cap;
                warm.set_capacity(ids[k], cap);
            }
            let warm_value = warm.max_flow_incremental(s, t);
            // Cold baseline: same topology and current capacities, fresh
            // from-scratch solve.
            let (mut cold, _) = build_dinic(n, &edges);
            let cold_value = cold.max_flow(s, t);
            assert!(
                (warm_value - cold_value).abs() <= 1e-9 * (1.0 + cold_value.abs()),
                "warm {warm_value} vs cold {cold_value}"
            );
            assert!(
                (warm.flow_value() - warm_value).abs() <= 1e-12 * (1.0 + warm_value.abs()),
                "flow_value accessor drifted"
            );
            certify(&warm, &edges, &ids, warm_value);
        }
    });
}

/// The BAL access pattern: a WAP-shaped layered network whose source
/// capacities sweep down and up a bisection ladder. Warm values must track
/// cold and push-relabel values at every step, and the min cut must keep
/// certifying the warm flow.
#[test]
fn warm_bisection_ladder_on_wap_shaped_networks() {
    check::cases(48, 0xD1FF_0003, |rng| {
        let jobs = rng.gen_range(3usize..10);
        let ivals = rng.gen_range(2usize..6);
        let s = 0usize;
        let t = 1 + jobs + ivals;
        let mut edges: Vec<(usize, usize, f64)> = Vec::new();
        let demands: Vec<f64> = (0..jobs).map(|_| rng.gen_range(1.0f64..8.0)).collect();
        for (i, &d) in demands.iter().enumerate() {
            edges.push((s, 1 + i, d));
            for j in 0..ivals {
                if rng.gen_range(0u32..3) > 0 {
                    edges.push((1 + i, 1 + jobs + j, rng.gen_range(0.5f64..4.0)));
                }
            }
        }
        for j in 0..ivals {
            edges.push((1 + jobs + j, t, rng.gen_range(1.0f64..10.0)));
        }
        let (mut warm, ids) = build_dinic(t + 1, &edges);
        warm.max_flow(s, t);
        // Walk the demand scale down then back up, as a bisection would.
        for &scale in &[0.8, 0.5, 0.3, 0.45, 0.7, 1.0, 1.3] {
            // Source edges were pushed first, so edge `i` is job `i`'s.
            for (i, &d) in demands.iter().enumerate() {
                edges[i].2 = d * scale;
                warm.set_capacity(ids[i], d * scale);
            }
            let warm_value = warm.max_flow_incremental(s, t);
            let (mut cold, _) = build_dinic(t + 1, &edges);
            let cold_value = cold.max_flow(s, t);
            let mut pr = PushRelabel::new(t + 1);
            for &(u, v, c) in &edges {
                pr.add_edge(u, v, c);
            }
            let pr_value = pr.max_flow(s, t);
            assert!(
                (warm_value - cold_value).abs() <= 1e-9 * (1.0 + cold_value),
                "scale {scale}: warm {warm_value} vs cold {cold_value}"
            );
            assert!(
                (warm_value - pr_value).abs() <= 1e-6 * (1.0 + pr_value),
                "scale {scale}: warm {warm_value} vs push-relabel {pr_value}"
            );
            certify(&warm, &edges, &ids, warm_value);
        }
    });
}

/// A random contiguous-window WAP instance: per-job windows `(lo, hi)` over
/// `m` cells (occasionally empty), per-cell single-job edge caps, cell caps,
/// and job demands — all integer-valued so the exact reference applies.
struct WapShape {
    windows: Vec<(u32, u32)>,
    edge_cap: Vec<f64>,
    cell_cap: Vec<f64>,
    demands: Vec<f64>,
}

fn random_wap_shape(rng: &mut StdRng) -> WapShape {
    let m = rng.gen_range(2usize..8);
    let n = rng.gen_range(3usize..14);
    let windows = (0..n)
        .map(|_| {
            if rng.gen_range(0u32..12) == 0 {
                (1u32, 0u32) // alive nowhere
            } else {
                let lo = rng.gen_range(0u32..m as u32);
                let hi = rng.gen_range(lo..m as u32);
                (lo, hi)
            }
        })
        .collect();
    let cell_cap: Vec<f64> = (0..m).map(|_| rng.gen_range(0u32..10) as f64).collect();
    let edge_cap = cell_cap
        .iter()
        .map(|&c| {
            if c == 0.0 {
                0.0
            } else {
                rng.gen_range(1.0f64..c.min(4.0) + 1.0).floor()
            }
        })
        .collect();
    let demands = (0..n).map(|_| rng.gen_range(0u32..12) as f64).collect();
    WapShape {
        windows,
        edge_cap,
        cell_cap,
        demands,
    }
}

/// The generic three-layer network equivalent to a [`WapShape`], plus the
/// edge ids needed to re-parameterize and to seed flows: `(net, edges,
/// source_ids, job_cell_ids, sink_ids)` with node layout
/// `source = 0, job i = 1 + i, cell j = 1 + n + j, sink = 1 + n + m`.
#[allow(clippy::type_complexity)]
fn build_wap_network(
    shape: &WapShape,
) -> (
    FlowNetwork,
    Vec<(usize, usize, f64)>,
    Vec<EdgeId>,
    Vec<Vec<(usize, EdgeId)>>,
    Vec<EdgeId>,
    Vec<EdgeId>,
) {
    let n = shape.windows.len();
    let m = shape.cell_cap.len();
    let (s, t) = (0usize, 1 + n + m);
    let mut net = FlowNetwork::new(t + 1);
    let mut edges = Vec::new();
    let mut ids = Vec::new();
    let mut source_ids = Vec::with_capacity(n);
    for (i, &d) in shape.demands.iter().enumerate() {
        let e = net.add_edge(s, 1 + i, d);
        edges.push((s, 1 + i, d));
        ids.push(e);
        source_ids.push(e);
    }
    let mut job_cell_ids = vec![Vec::new(); n];
    for (i, &(lo, hi)) in shape.windows.iter().enumerate() {
        if lo > hi {
            continue;
        }
        for j in lo as usize..=hi as usize {
            let c = shape.edge_cap[j];
            let e = net.add_edge(1 + i, 1 + n + j, c);
            edges.push((1 + i, 1 + n + j, c));
            ids.push(e);
            job_cell_ids[i].push((j, e));
        }
    }
    let mut sink_ids = Vec::with_capacity(m);
    for (j, &c) in shape.cell_cap.iter().enumerate() {
        let e = net.add_edge(1 + n + j, t, c);
        edges.push((1 + n + j, t, c));
        ids.push(e);
        sink_ids.push(e);
    }
    (net, edges, ids, job_cell_ids, source_ids, sink_ids)
}

fn exact_value(shape: &WapShape) -> f64 {
    let n = shape.windows.len();
    let m = shape.cell_cap.len();
    let (s, t) = (0usize, 1 + n + m);
    let mut exact = IntFlowNetwork::new(t + 1);
    for (i, &d) in shape.demands.iter().enumerate() {
        exact.add_edge(s, 1 + i, d as u64);
    }
    for (i, &(lo, hi)) in shape.windows.iter().enumerate() {
        if lo > hi {
            continue;
        }
        for j in lo as usize..=hi as usize {
            exact.add_edge(1 + i, 1 + n + j, shape.edge_cap[j] as u64);
        }
    }
    for (j, &c) in shape.cell_cap.iter().enumerate() {
        exact.add_edge(1 + n + j, t, c as u64);
    }
    exact.max_flow(s, t) as f64
}

/// The interval sweep kernel against all three generic engines on random
/// contiguous WAP instances. A certified sweep must reproduce the exact max
/// flow value *and* the canonical min-cut sides a residual BFS on the Dinic
/// network reports (the canonical side is a property of the network, not of
/// the particular maximum flow). An uncertified sweep must undershoot —
/// never exceed — the true value.
#[test]
fn sweep_matches_engines_on_random_wap_instances() {
    check::cases(128, 0xD1FF_0005, |rng| {
        let shape = random_wap_shape(rng);
        let n = shape.windows.len();
        let m = shape.cell_cap.len();
        let (s, t) = (0usize, 1 + n + m);
        let mut sweep = SweepFlow::new(
            shape.windows.clone(),
            shape.edge_cap.clone(),
            shape.cell_cap.clone(),
        );
        let sweep_value = sweep.solve(&shape.demands);
        let (mut dinic, _, _, _, _, _) = build_wap_network(&shape);
        let dinic_value = dinic.max_flow(s, t);
        let mut pr = PushRelabel::new(t + 1);
        for (i, &d) in shape.demands.iter().enumerate() {
            pr.add_edge(s, 1 + i, d);
        }
        for (i, &(lo, hi)) in shape.windows.iter().enumerate() {
            if lo <= hi {
                for j in lo as usize..=hi as usize {
                    pr.add_edge(1 + i, 1 + n + j, shape.edge_cap[j]);
                }
            }
        }
        for (j, &c) in shape.cell_cap.iter().enumerate() {
            pr.add_edge(1 + n + j, t, c);
        }
        let pr_value = pr.max_flow(s, t);
        let exact = exact_value(&shape);
        assert!((dinic_value - exact).abs() < 1e-6, "dinic vs exact");
        assert!((pr_value - exact).abs() < 1e-6, "push-relabel vs exact");
        if sweep.certified() {
            assert!(
                (sweep_value - exact).abs() <= 1e-9 * (1.0 + exact),
                "certified sweep {sweep_value} vs exact {exact}"
            );
            let side = dinic.residual_reachable_from_source();
            for i in 0..n {
                assert_eq!(sweep.job_side()[i], side[1 + i], "job {i} cut side");
            }
            for j in 0..m {
                assert_eq!(sweep.cell_side()[j], side[1 + n + j], "cell {j} cut side");
            }
        } else {
            assert!(
                sweep_value <= exact + 1e-9 * (1.0 + exact),
                "uncertified sweep overshoots: {sweep_value} vs {exact}"
            );
        }
    });
}

/// Randomized capacity re-parameterizations: each round rescales demands and
/// caps, the sweep is rebuilt (its constructor is the re-parameterization
/// path the `WapSolver` uses), and the warm Dinic engine repairs in place.
/// Certified sweep values, warm values, and the cold exact reference must
/// all agree at every round.
#[test]
fn sweep_reparameterization_tracks_warm_and_exact_engines() {
    check::cases(64, 0xD1FF_0006, |rng| {
        let mut shape = random_wap_shape(rng);
        let n = shape.windows.len();
        let m = shape.cell_cap.len();
        let (s, t) = (0usize, 1 + n + m);
        let (mut warm, _, _, job_cell_ids, source_ids, sink_ids) = build_wap_network(&shape);
        warm.max_flow(s, t);
        for _round in 0..5 {
            for d in shape.demands.iter_mut() {
                if rng.gen_range(0u32..3) == 0 {
                    *d = rng.gen_range(0u32..12) as f64;
                }
            }
            for j in 0..m {
                if rng.gen_range(0u32..3) == 0 {
                    shape.cell_cap[j] = rng.gen_range(0u32..10) as f64;
                    shape.edge_cap[j] = shape.edge_cap[j].min(shape.cell_cap[j]);
                }
            }
            for (i, &d) in shape.demands.iter().enumerate() {
                warm.set_capacity(source_ids[i], d);
            }
            for cells in &job_cell_ids {
                for &(j, e) in cells {
                    warm.set_capacity(e, shape.edge_cap[j]);
                }
            }
            for (j, &e) in sink_ids.iter().enumerate() {
                warm.set_capacity(e, shape.cell_cap[j]);
            }
            let warm_value = warm.max_flow_incremental(s, t);
            let exact = exact_value(&shape);
            assert!(
                (warm_value - exact).abs() <= 1e-9 * (1.0 + exact),
                "warm {warm_value} vs exact {exact}"
            );
            let mut sweep = SweepFlow::new(
                shape.windows.clone(),
                shape.edge_cap.clone(),
                shape.cell_cap.clone(),
            );
            let sweep_value = sweep.solve(&shape.demands);
            if sweep.certified() {
                assert!(
                    (sweep_value - exact).abs() <= 1e-9 * (1.0 + exact),
                    "certified sweep {sweep_value} vs exact {exact}"
                );
            } else {
                assert!(sweep_value <= exact + 1e-9 * (1.0 + exact));
            }
        }
    });
}

/// The seeded-resume fallback path: the sweep's greedy allocation is loaded
/// into a generic network with `set_flow` and completed with
/// `resume_max_flow`. The resumed value must match cold Dinic, push-relabel,
/// and the exact reference, and the resulting flow must certify (canonical
/// cut saturated, conservation at every node) — exactly what `WapSolver`
/// relies on when the fast path declines.
#[test]
fn seeded_resume_from_sweep_matches_cold_engines() {
    check::cases(96, 0xD1FF_0007, |rng| {
        let shape = random_wap_shape(rng);
        let n = shape.windows.len();
        let m = shape.cell_cap.len();
        let (s, t) = (0usize, 1 + n + m);
        let mut sweep = SweepFlow::new(
            shape.windows.clone(),
            shape.edge_cap.clone(),
            shape.cell_cap.clone(),
        );
        sweep.solve(&shape.demands);
        let (mut seeded, edges, ids, job_cell_ids, source_ids, sink_ids) =
            build_wap_network(&shape);
        for (i, &e) in source_ids.iter().enumerate() {
            seeded.set_flow(e, sweep.routed(i));
        }
        for (i, cells) in job_cell_ids.iter().enumerate() {
            let mut alloc = sweep.allocs_of(i);
            let mut cur = alloc.next();
            for &(j, e) in cells {
                while let Some((c, _)) = cur {
                    if c < j {
                        cur = alloc.next();
                    } else {
                        break;
                    }
                }
                let f = match cur {
                    Some((c, amt)) if c == j => amt,
                    _ => 0.0,
                };
                seeded.set_flow(e, f);
            }
        }
        for (j, &e) in sink_ids.iter().enumerate() {
            seeded.set_flow(e, sweep.cell_usage(j));
        }
        let resumed = seeded.resume_max_flow(s, t);
        let exact = exact_value(&shape);
        assert!(
            (resumed - exact).abs() <= 1e-9 * (1.0 + exact),
            "seeded resume {resumed} vs exact {exact}"
        );
        certify(&seeded, &edges, &ids, resumed);
    });
}

/// Residual reachability after incremental updates answers the question the
/// BAL classification asks: which source edges can still grow. Every
/// unsaturated source edge must keep its job node on the source side, and
/// on fully-routed (feasible) networks the whole demand must be routed.
#[test]
fn residual_reachability_consistent_after_updates() {
    check::cases(48, 0xD1FF_0004, |rng| {
        let (n, edges) = random_graph(rng);
        if edges.is_empty() {
            return;
        }
        let (s, t) = (0, n - 1);
        let (mut net, ids) = build_dinic(n, &edges);
        net.max_flow(s, t);
        for _ in 0..4 {
            let k = rng.gen_range(0usize..edges.len());
            net.set_capacity(ids[k], rng.gen_range(0u32..100) as f64);
            let value = net.max_flow_incremental(s, t);
            let side = net.residual_reachable_from_source();
            // An edge out of the source with residual slack keeps its head
            // on the source side (one residual hop).
            for (&(u, v, _), &id) in edges.iter().zip(&ids) {
                if u == s && !net.is_saturated(id) {
                    assert!(side[v], "unsaturated source edge head cut away");
                }
            }
            if value > 0.0 {
                assert!(!side[t], "sink residual-reachable after a max flow");
            }
        }
    });
}
