//! Integration tests for the MBAL extension and the online algorithms,
//! exercised through the facade crate.

use speedscale::core::online::{avr_m_energy, oa_m};
use speedscale::migratory::bal::bal;
use speedscale::migratory::mbal::mbal;
use speedscale::model::{Instance, Job};
use speedscale::workloads::{families, subseed, ArrivalDist, Spec, WindowDist, WorkDist};

fn deadline_free(n: usize, m: usize, alpha: f64, seed: u64) -> Instance {
    Spec::new(n, m, alpha)
        .arrivals(ArrivalDist::Poisson { rate: 1.5 })
        .work(WorkDist::Uniform { min: 0.5, max: 2.0 })
        .window(WindowDist::Fixed(1e7))
        .gen(seed)
}

/// MBAL inverts itself: solving for budget E yields makespan X; re-solving
/// the X-clamped instance with BAL spends (essentially) E when the budget is
/// binding.
#[test]
fn mbal_budget_is_tight_when_binding() {
    let inst = deadline_free(10, 2, 2.5, 71);
    // Small budget => the energy constraint binds and is met with equality.
    let budget = inst.total_work() * 0.6;
    let sol = mbal(&inst, budget).unwrap();
    assert!(sol.energy <= budget * (1.0 + 1e-6));
    assert!(
        sol.energy >= budget * (1.0 - 1e-3),
        "binding budget should be spent almost fully: {} of {budget}",
        sol.energy
    );
    // And the schedule realizes it.
    let stats = sol
        .schedule()
        .validate(&sol.clamped, Default::default())
        .unwrap();
    assert!(stats.makespan <= sol.makespan * (1.0 + 1e-9));
}

/// A very large budget drives the makespan to the release-bound floor:
/// finishing takes at least as long as the last arrival (plus epsilon work).
#[test]
fn mbal_generous_budget_approaches_release_floor() {
    let inst = deadline_free(8, 4, 2.0, 13);
    let last_release = inst
        .jobs()
        .iter()
        .map(|j| j.release)
        .fold(f64::NEG_INFINITY, f64::max);
    let generous = mbal(&inst, inst.total_work() * 1e4).unwrap();
    assert!(generous.makespan > last_release);
    let tight = mbal(&inst, inst.total_work() * 0.5).unwrap();
    assert!(generous.makespan < tight.makespan);
}

/// MBAL respects pre-existing deadlines as side constraints.
#[test]
fn mbal_with_hard_deadlines() {
    let jobs = vec![
        Job::new(0, 1.0, 0.0, 1.0), // hard deadline forces speed >= 1
        Job::new(1, 2.0, 0.0, 1e7),
    ];
    let inst = Instance::new(jobs, 1, 2.0).unwrap();
    // Minimum possible energy: job 0 at speed 1 (E=1), job 1 arbitrarily slow.
    assert!(
        mbal(&inst, 0.9).is_none(),
        "budget below the deadline-forced floor"
    );
    let sol = mbal(&inst, 2.0).unwrap();
    assert!(sol.energy <= 2.0 * (1.0 + 1e-6));
    // Job 0's deadline is respected in the clamped instance.
    assert!(sol.clamped.job(0).deadline <= 1.0 + 1e-9);
}

/// OA-m ratio is bounded by alpha^alpha across a seed sweep (the strongest
/// online guarantee we rely on in the experiments).
#[test]
fn oa_m_competitive_sweep() {
    for seed in 0..6u64 {
        for alpha in [1.5, 2.0, 3.0] {
            let inst = families::bursty(24, 2, alpha).gen(subseed(0x0A, seed));
            let opt = bal(&inst).energy;
            let oa = oa_m(&inst).energy(alpha);
            assert!(
                oa <= alpha.powf(alpha) * opt * (1.0 + 1e-6),
                "seed {seed} alpha {alpha}: OA {oa} vs bound {} * {opt}",
                alpha.powf(alpha)
            );
            assert!(oa >= opt * (1.0 - 1e-6));
        }
    }
}

/// AVR-m energy matches between the closed-form accumulator and the
/// materialized schedule, and respects its competitive bound.
#[test]
fn avr_m_energy_consistency_sweep() {
    for seed in 0..6u64 {
        let alpha = 2.0;
        let inst = families::general(30, 3, alpha).gen(subseed(0xA7, seed));
        let direct = avr_m_energy(&inst);
        let sched = speedscale::core::online::avr_m(&inst);
        let stats = sched.validate(&inst, Default::default()).unwrap();
        assert!((stats.energy - direct).abs() <= 1e-6 * direct);
        let opt = bal(&inst).energy;
        let bound = alpha.powf(alpha) * 2.0f64.powf(alpha - 1.0);
        assert!(direct >= opt * (1.0 - 1e-6));
        assert!(
            direct <= bound * opt * (1.0 + 1e-6) * 2.0,
            "AVR-m far above its expected range: {direct} vs opt {opt}"
        );
    }
}

/// Degenerate inputs flow through the whole stack.
#[test]
fn degenerate_inputs() {
    // Single job.
    let one = Instance::new(vec![Job::new(0, 1.0, 0.0, 2.0)], 3, 2.0).unwrap();
    assert!((bal(&one).energy - 0.5).abs() < 1e-9);
    let s = oa_m(&one);
    s.validate(&one, Default::default()).unwrap();

    // Many machines, one interval, heavy contention.
    let jobs: Vec<Job> = (0..12).map(|i| Job::new(i, 1.0, 0.0, 1.0)).collect();
    let tight = Instance::new(jobs, 4, 2.0).unwrap();
    let sol = bal(&tight);
    // Uniform speed 12/4 = 3; energy 12 * 3 = 36 at alpha 2.
    assert!((sol.energy - 36.0).abs() < 1e-6);
    sol.schedule(&tight)
        .validate(&tight, Default::default())
        .unwrap();
}
