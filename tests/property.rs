//! Cross-crate property-based tests: randomized invariants that tie the
//! whole stack together. These complement the per-crate seeded property
//! suites with properties that need several crates at once (exact solver vs
//! migratory optimum vs heuristics vs certificates).

use speedscale::core::assignment::{assignment_energy, assignment_schedule};
use speedscale::core::exact::exact_nonmigratory;
use speedscale::core::relax::relax_round;
use speedscale::core::rr::rr_assignment;
use speedscale::migratory::bal::bal;
use speedscale::migratory::kkt::certify;
use speedscale::model::numeric::Tol;
use speedscale::model::schedule::ValidationOptions;
use speedscale::model::{Instance, Job};
use speedscale::prng::{check, Rng, StdRng};

/// Random small job sets: (work, release, window-length) triples.
fn random_jobs(rng: &mut StdRng, max_n: usize) -> Vec<Job> {
    check::vec_of(rng, 1..max_n, |r| {
        (
            r.gen_range(0.1f64..3.0),
            r.gen_range(0.0f64..6.0),
            r.gen_range(0.2f64..4.0),
        )
    })
    .into_iter()
    .enumerate()
    .map(|(i, (w, r, len))| Job::new(i as u32, w, r, r + len))
    .collect()
}

/// Agreeable unit-work job sets.
fn unit_agreeable_jobs(rng: &mut StdRng, max_n: usize) -> Vec<Job> {
    let seeds: Vec<(f64, f64)> = check::vec_of(rng, 1..max_n, |r| {
        (r.gen_range(0.0f64..6.0), r.gen_range(0.5f64..4.0))
    });
    let mut releases: Vec<f64> = seeds.iter().map(|&(r, _)| r).collect();
    releases.sort_by(f64::total_cmp);
    let mut running = f64::NEG_INFINITY;
    releases
        .iter()
        .zip(seeds.iter())
        .enumerate()
        .map(|(i, (&r, &(_, len)))| {
            running = running.max(r + len);
            Job::new(i as u32, 1.0, r, running)
        })
        .collect()
}

/// The chain `migratory OPT <= exact non-migratory OPT <= heuristics`,
/// with every BAL run KKT-certified and every schedule validating.
#[test]
fn full_hierarchy_with_certificates() {
    check::cases(24, 0x41E1, |rng| {
        let jobs = random_jobs(rng, 7);
        let m = rng.gen_range(1usize..4);
        let alpha = rng.gen_range(1.4f64..3.0);
        let inst = Instance::new(jobs, m, alpha).unwrap();
        let sol = bal(&inst);
        assert!(
            certify(&inst, &sol, Tol::rel(1e-6)).is_ok(),
            "KKT certificate rejected"
        );
        let mig = sol.energy;
        let exact = exact_nonmigratory(&inst).energy;
        assert!(
            exact >= mig * (1.0 - 1e-6),
            "exact {exact} below migratory {mig}"
        );
        for assign in [rr_assignment(&inst), relax_round(&inst)] {
            let e = assignment_energy(&inst, &assign);
            assert!(
                e >= exact * (1.0 - 1e-9),
                "heuristic {e} beat exact {exact}"
            );
            let s = assignment_schedule(&inst, &assign);
            let stats = s
                .validate(&inst, ValidationOptions::non_migratory())
                .unwrap();
            assert!((stats.energy - e).abs() <= 1e-6 * e);
        }
    });
}

/// R1 as a property: RR equals the exact optimum on *every* random
/// unit-work agreeable instance.
#[test]
fn rr_is_optimal_on_unit_agreeable() {
    check::cases(24, 0xA9_EE, |rng| {
        let jobs = unit_agreeable_jobs(rng, 8);
        let m = rng.gen_range(1usize..4);
        let alpha = rng.gen_range(1.5f64..3.0);
        let inst = Instance::new(jobs, m, alpha).unwrap();
        if !inst.is_agreeable() {
            return; // constructively agreeable; guard against tie-order noise
        }
        let rr = assignment_energy(&inst, &rr_assignment(&inst));
        let opt = exact_nonmigratory(&inst).energy;
        assert!(
            rr <= opt * (1.0 + 1e-6),
            "RR {rr} suboptimal vs exact {opt} on unit agreeable input"
        );
    });
}

/// Relaxing any single deadline never increases the migratory optimum.
#[test]
fn deadline_relaxation_is_monotone() {
    check::cases(24, 0xDEAD11, |rng| {
        let jobs = random_jobs(rng, 6);
        let m = rng.gen_range(1usize..3);
        let which = rng.gen_range(0usize..6);
        let extra = rng.gen_range(0.1f64..5.0);
        let inst = Instance::new(jobs.clone(), m, 2.0).unwrap();
        let base = bal(&inst).energy;
        let k = which % jobs.len();
        let mut relaxed_jobs = jobs;
        relaxed_jobs[k].deadline += extra;
        let relaxed = Instance::new(relaxed_jobs, m, 2.0).unwrap();
        let better = bal(&relaxed).energy;
        assert!(
            better <= base * (1.0 + 1e-6),
            "relaxing a deadline raised OPT: {better} > {base}"
        );
    });
}

/// The migratory schedule materialization conserves per-job work for
/// random instances (exercises flow readback + McNaughton end to end).
#[test]
fn migratory_schedule_work_conservation() {
    check::cases(24, 0x3C_0D, |rng| {
        let jobs = random_jobs(rng, 10);
        let m = rng.gen_range(1usize..4);
        let inst = Instance::new(jobs, m, 2.0).unwrap();
        let sol = bal(&inst);
        let schedule = sol.schedule(&inst);
        for job in inst.jobs() {
            let done = schedule.work_of(job.id);
            assert!(
                (done - job.work).abs() <= 1e-6 * job.work,
                "{}: scheduled {done} of {}",
                job.id,
                job.work
            );
        }
    });
}

/// Doubling the machine count never hurts, and with `m >= n` the
/// migratory and exact non-migratory optima coincide.
#[test]
fn machines_monotone_and_gap_closes() {
    check::cases(24, 0x6A_B5, |rng| {
        let jobs = random_jobs(rng, 5);
        let n = jobs.len();
        let small = Instance::new(jobs.clone(), 1.max(n / 2), 2.0).unwrap();
        let large = Instance::new(jobs, n, 2.0).unwrap();
        let e_small = bal(&small).energy;
        let e_large = bal(&large).energy;
        assert!(e_large <= e_small * (1.0 + 1e-6));
        let exact_large = exact_nonmigratory(&large).energy;
        assert!(
            (exact_large - e_large).abs() <= 1e-6 * e_large,
            "m >= n should kill the migration gap: {exact_large} vs {e_large}"
        );
    });
}
