//! Integration tests for the extension features, exercised through the
//! facade crate: discrete DVFS quantization, bounded speed + throughput,
//! timeline decomposition, local search, the parallel exact solver, and the
//! flow-time objective — all composed with the audited validator.

use speedscale::core::assignment::{assignment_energy, assignment_schedule};
use speedscale::core::decompose::exact_decomposed;
use speedscale::core::exact::exact_nonmigratory;
use speedscale::core::local_search::{improve, LocalSearchOptions};
use speedscale::core::parallel::exact_nonmigratory_parallel;
use speedscale::core::rr::rr_assignment;
use speedscale::core::throughput::{max_throughput_exact, max_throughput_greedy};
use speedscale::migratory::bal::bal;
use speedscale::migratory::bounded::{bal_bounded, min_peak_speed};
use speedscale::model::quantize::{quantize_speeds, SpeedLevels};
use speedscale::workloads::{families, subseed};

/// Quantizing any optimal schedule onto its own speed range stays feasible
/// and costs a bounded, grid-shrinking overhead.
#[test]
fn quantization_composes_with_all_schedulers() {
    let inst = families::general(20, 3, 2.2).gen(41);
    for schedule in [
        bal(&inst).schedule(&inst),
        assignment_schedule(&inst, &rr_assignment(&inst)),
    ] {
        let smin = schedule
            .segments()
            .iter()
            .map(|s| s.speed)
            .fold(f64::INFINITY, f64::min);
        let smax = schedule
            .segments()
            .iter()
            .map(|s| s.speed)
            .fold(0.0f64, f64::max)
            * (1.0 + 1e-9);
        let mut prev = f64::INFINITY;
        for levels in [2usize, 4, 16] {
            let grid = SpeedLevels::geometric(smin, smax, levels).unwrap();
            let q = quantize_speeds(&schedule, &grid).unwrap();
            let stats = q.validate(&inst, Default::default()).unwrap();
            let overhead = stats.energy / schedule.energy(inst.alpha());
            assert!(overhead >= 1.0 - 1e-9);
            assert!(
                overhead <= prev + 1e-9,
                "overhead must shrink with finer grids"
            );
            prev = overhead;
        }
    }
}

/// The bounded-speed oracle, throughput search and the unbounded optimum
/// tell one consistent story.
#[test]
fn bounded_speed_story_is_consistent() {
    let inst = families::unit_arbitrary(12, 2, 2.0).gen(17);
    let peak = min_peak_speed(&inst);
    // Above the peak: feasible, full throughput, capped == unbounded.
    let above = peak * 1.01;
    assert!(bal_bounded(&inst, above).is_some());
    assert_eq!(max_throughput_greedy(&inst, above).throughput(), 12);
    // Below the peak: infeasible as a whole, but some subset fits.
    let below = peak * 0.7;
    assert!(bal_bounded(&inst, below).is_none());
    let g = max_throughput_greedy(&inst, below);
    let e = max_throughput_exact(&inst, below);
    assert!(g.throughput() < 12);
    assert!(g.throughput() <= e.throughput());
    assert!(e.throughput() < 12);
    // The admitted subset is genuinely schedulable under the cap.
    let sub = inst.subset(&e.admitted);
    let capped = bal_bounded(&sub, below * (1.0 + 1e-9));
    assert!(
        capped.is_some(),
        "exact throughput subset must fit under the cap"
    );
}

/// Decomposed exact, monolithic exact and the parallel exact solver agree.
#[test]
fn three_exact_solvers_agree() {
    use speedscale::workloads::{ArrivalDist, Spec, WindowDist, WorkDist};
    let spec = Spec::new(10, 2, 2.0)
        .arrivals(ArrivalDist::Bursty {
            burst: 5,
            gap: 50.0,
        })
        .work(WorkDist::Uniform { min: 0.5, max: 2.0 })
        .window(WindowDist::LaxityFactor { min: 1.2, max: 2.5 });
    for seed in [1u64, 2] {
        let inst = spec.gen(subseed(0xE8, seed));
        let mono = exact_nonmigratory(&inst).energy;
        let deco = exact_decomposed(&inst).energy;
        let par = exact_nonmigratory_parallel(&inst).energy;
        assert!((mono - deco).abs() <= 1e-9 * mono);
        assert!((mono - par).abs() <= 1e-9 * mono);
    }
}

/// Local search composes: seeding with any constructive policy, the result
/// stays sandwiched between the migratory LB and the seed's energy, and the
/// improved assignment's schedule validates.
#[test]
fn local_search_composes_with_policies() {
    let inst = families::weighted_agreeable(16, 3, 2.5).gen(23);
    let lb = bal(&inst).energy;
    let seed = rr_assignment(&inst);
    let seed_energy = assignment_energy(&inst, &seed);
    let res = improve(&inst, &seed, LocalSearchOptions::default());
    assert!(res.energy >= lb * (1.0 - 1e-6));
    assert!(res.energy <= seed_energy * (1.0 + 1e-9));
    let schedule = assignment_schedule(&inst, &res.assignment);
    schedule
        .validate(
            &inst,
            speedscale::model::schedule::ValidationOptions::non_migratory(),
        )
        .unwrap();
}

/// Flow-time API composes with the model validator end to end.
#[test]
fn flowtime_schedules_validate() {
    use speedscale::single::flowtime::{flow_plus_energy, min_flow_time_budget};
    let releases: Vec<f64> = (0..20)
        .map(|k| k as f64 * 0.4 + (k % 4) as f64 * 0.05)
        .collect();
    for alpha in [1.5, 2.0, 3.0] {
        let a = flow_plus_energy(&releases, alpha, 1.0);
        let s = a.schedule(0);
        let inst = a.as_instance(1, alpha);
        s.validate(
            &inst,
            speedscale::model::schedule::ValidationOptions::non_migratory(),
        )
        .unwrap();
        let b = min_flow_time_budget(&releases, alpha, a.energy);
        // Re-solving with a's energy as the budget cannot do worse than a.
        assert!(b.total_flow <= a.total_flow * (1.0 + 1e-6));
    }
}

/// The non-migratory budgeted-makespan solver sandwiches correctly against
/// MBAL across a budget sweep.
#[test]
fn budgeted_makespan_sandwich_sweep() {
    use speedscale::core::budget::{makespan_under_budget, InnerSolver};
    use speedscale::migratory::mbal::mbal;
    use speedscale::model::{Instance, Job};
    // Deadline-free variant (clamp_deadlines only tightens, never loosens).
    let base = families::general(8, 2, 2.0).gen(33);
    let jobs: Vec<Job> = base
        .jobs()
        .iter()
        .map(|j| Job::new(j.id.0, j.work, j.release, 1e7))
        .collect();
    let inst = Instance::new(jobs, 2, 2.0).unwrap();
    for factor in [0.5, 1.0, 2.0] {
        let budget = inst.total_work() * factor;
        let mig = mbal(&inst, budget).unwrap().makespan;
        let exact = makespan_under_budget(&inst, budget, InnerSolver::Exact)
            .unwrap()
            .makespan;
        let greedy = makespan_under_budget(&inst, budget, InnerSolver::Greedy)
            .unwrap()
            .makespan;
        assert!(mig <= exact * (1.0 + 1e-6), "factor {factor}");
        assert!(exact <= greedy * (1.0 + 1e-6), "factor {factor}");
    }
}

/// SWF import feeds every downstream consumer.
#[test]
fn swf_chain_to_solvers() {
    use speedscale::workloads::{parse_swf, SwfOptions};
    let trace = "\
; tiny trace
1 0   0 50 2 -1 -1 2 120 -1 1 1 1 1 1 1 -1 -1
2 10  0 30 1 -1 -1 1  90 -1 1 1 1 1 1 1 -1 -1
3 500 0 40 2 -1 -1 2 100 -1 1 1 1 1 1 1 -1 -1
4 510 0 20 1 -1 -1 1  -1 -1 1 1 1 1 1 1 -1 -1
";
    let (inst, report) = parse_swf(
        trace,
        SwfOptions {
            machines: 2,
            ..Default::default()
        },
    )
    .unwrap();
    assert_eq!(report.imported, 4);
    let lb = bal(&inst).energy;
    let exact = exact_decomposed(&inst).energy;
    assert!(exact >= lb * (1.0 - 1e-6));
    let peak = min_peak_speed(&inst);
    assert!(peak > 0.0);
    assert_eq!(max_throughput_greedy(&inst, peak * 1.01).throughput(), 4);
}
